//! Little-endian binary codec primitives.
//!
//! The snapshot format (see [`crate::snapshot`]) is built from a handful of
//! primitives: fixed-width little-endian integers and floats, LEB128-style
//! varints, and length-prefixed byte strings. [`Writer`] appends them to a
//! growable buffer; [`Reader`] consumes them with bounds checks everywhere,
//! so a truncated or corrupted payload surfaces as a typed [`CodecError`]
//! instead of a panic or an out-of-bounds read. The module also hosts the
//! [`crc32`] checksum (IEEE polynomial, the zlib/PNG one) that guards each
//! snapshot section.
//!
//! Sorted id sequences (set elements, posting lists) are stored as
//! [`Writer::delta_seq`] — varint deltas between consecutive values — which
//! keeps real snapshots small without a compression dependency.

use std::fmt;

/// Why decoding failed (position is a byte offset into the section).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value did.
    Truncated {
        /// Byte offset at which more input was needed.
        offset: usize,
        /// What was being decoded.
        what: &'static str,
    },
    /// A varint ran past 10 bytes (or overflowed 64 bits).
    VarintOverflow {
        /// Byte offset of the offending varint.
        offset: usize,
    },
    /// A declared length or count exceeds the remaining input — a corrupt
    /// prefix would otherwise trigger an enormous allocation.
    ImplausibleLength {
        /// Byte offset of the length field.
        offset: usize,
        /// The declared value.
        declared: u64,
        /// What the length described.
        what: &'static str,
    },
    /// A byte string that must be UTF-8 was not.
    InvalidUtf8 {
        /// Byte offset of the string payload.
        offset: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { offset, what } => {
                write!(f, "input truncated at byte {offset} while reading {what}")
            }
            CodecError::VarintOverflow { offset } => {
                write!(f, "varint at byte {offset} overflows 64 bits")
            }
            CodecError::ImplausibleLength {
                offset,
                declared,
                what,
            } => write!(
                f,
                "implausible {what} length {declared} at byte {offset} (exceeds remaining input)"
            ),
            CodecError::InvalidUtf8 { offset } => {
                write!(f, "invalid UTF-8 in string at byte {offset}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends codec primitives to a growable byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Fixed-width little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Fixed-width little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `f32` (bit pattern preserved exactly).
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `f64` (bit pattern preserved exactly).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// LEB128 varint (7 bits per byte, little-endian groups).
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Varint length prefix followed by the raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.varint(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// A sorted strictly-increasing `u32` sequence as a varint count, the
    /// first value, and varint deltas between consecutive values.
    ///
    /// # Panics
    ///
    /// Debug-asserts the sequence is strictly increasing (every caller
    /// stores sorted, deduplicated id lists).
    pub fn delta_seq(&mut self, ids: impl ExactSizeIterator<Item = u32> + Clone) {
        debug_assert!(
            {
                let v: Vec<u32> = ids.clone().collect();
                v.windows(2).all(|w| w[0] < w[1])
            },
            "delta_seq input must be strictly increasing"
        );
        self.varint(ids.len() as u64);
        let mut prev = 0u32;
        for (i, id) in ids.enumerate() {
            let delta = if i == 0 { id } else { id - prev };
            self.varint(delta as u64);
            prev = id;
        }
    }
}

/// Consumes codec primitives from a byte slice with bounds checks.
#[derive(Debug, Clone, Copy)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                offset: self.pos,
                what,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Fixed-width little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().unwrap()))
    }

    /// Fixed-width little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    /// Little-endian `f32`.
    pub fn f32(&mut self) -> Result<f32, CodecError> {
        Ok(f32::from_le_bytes(self.take(4, "f32")?.try_into().unwrap()))
    }

    /// Little-endian `f64`.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take(8, "f64")?.try_into().unwrap()))
    }

    /// Fills `out` with consecutive little-endian `f32`s — one bounds
    /// check for the whole slice, the bulk-decode path for vector rows.
    pub fn f32_into(&mut self, out: &mut [f32]) -> Result<(), CodecError> {
        let raw = self.take(out.len() * 4, "f32 slice")?;
        for (slot, chunk) in out.iter_mut().zip(raw.chunks_exact(4)) {
            *slot = f32::from_le_bytes(chunk.try_into().unwrap());
        }
        Ok(())
    }

    /// LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, CodecError> {
        let start = self.pos;
        let mut out = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.take(1, "varint")?[0];
            let payload = (byte & 0x7F) as u64;
            if shift == 63 && payload > 1 {
                return Err(CodecError::VarintOverflow { offset: start });
            }
            out |= payload << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
        }
        Err(CodecError::VarintOverflow { offset: start })
    }

    /// A varint validated against the remaining input: a declared count of
    /// items, each at least `min_item_bytes` wide, can never exceed what is
    /// actually left — catching corrupt prefixes before they allocate.
    pub fn checked_len(
        &mut self,
        min_item_bytes: usize,
        what: &'static str,
    ) -> Result<usize, CodecError> {
        let offset = self.pos;
        let declared = self.varint()?;
        let feasible = self.remaining() as u64 / min_item_bytes.max(1) as u64;
        if declared > feasible {
            return Err(CodecError::ImplausibleLength {
                offset,
                declared,
                what,
            });
        }
        Ok(declared as usize)
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self, what: &'static str) -> Result<&'a [u8], CodecError> {
        let n = self.checked_len(1, what)?;
        self.take(n, what)
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<&'a str, CodecError> {
        let offset = self.pos;
        let b = self.bytes(what)?;
        std::str::from_utf8(b).map_err(|_| CodecError::InvalidUtf8 { offset })
    }

    /// A [`Writer::delta_seq`] sequence, reconstructed to absolute values.
    pub fn delta_seq(&mut self, what: &'static str) -> Result<Vec<u32>, CodecError> {
        let n = self.checked_len(1, what)?;
        let mut out = Vec::with_capacity(n);
        let mut prev = 0u32;
        for i in 0..n {
            let offset = self.pos;
            let delta = self.varint()?;
            let next = if i == 0 { delta } else { prev as u64 + delta };
            if next > u32::MAX as u64 {
                return Err(CodecError::ImplausibleLength {
                    offset,
                    declared: next,
                    what,
                });
            }
            prev = next as u32;
            out.push(prev);
        }
        Ok(out)
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected — the zlib/PNG checksum) of
/// `data`. Slicing-by-8: eight derived tables let the hot loop fold eight
/// input bytes per iteration, which matters because every snapshot section
/// is checksummed on write *and* on load (the warm-start path).
pub fn crc32(data: &[u8]) -> u32 {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    let tables = TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, slot) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        for i in 0..256 {
            let mut c = t[0][i];
            for k in 1..8 {
                c = t[0][(c & 0xFF) as usize] ^ (c >> 8);
                t[k][i] = c;
            }
        }
        t
    });
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ c;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        c = tables[7][(lo & 0xFF) as usize]
            ^ tables[6][((lo >> 8) & 0xFF) as usize]
            ^ tables[5][((lo >> 16) & 0xFF) as usize]
            ^ tables[4][(lo >> 24) as usize]
            ^ tables[3][(hi & 0xFF) as usize]
            ^ tables[2][((hi >> 8) & 0xFF) as usize]
            ^ tables[1][((hi >> 16) & 0xFF) as usize]
            ^ tables[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = tables[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_width_roundtrip() {
        let mut w = Writer::new();
        w.u8(0xAB);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f32(1.5);
        w.f64(-0.25);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f32().unwrap(), 1.5);
        assert_eq!(r.f64().unwrap(), -0.25);
        assert!(r.is_exhausted());
    }

    #[test]
    fn varint_roundtrip_across_widths() {
        let values = [0u64, 1, 127, 128, 300, 1 << 20, u32::MAX as u64, u64::MAX];
        let mut w = Writer::new();
        for &v in &values {
            w.varint(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for &v in &values {
            assert_eq!(r.varint().unwrap(), v);
        }
        assert!(r.is_exhausted());
    }

    #[test]
    fn varint_overflow_is_detected() {
        // 11 continuation bytes: more than any u64 varint can hold.
        let bad = [0xFFu8; 11];
        let mut r = Reader::new(&bad);
        assert!(matches!(r.varint(), Err(CodecError::VarintOverflow { .. })));
    }

    #[test]
    fn strings_and_bytes_roundtrip() {
        let mut w = Writer::new();
        w.str("héllo wörld");
        w.bytes(&[1, 2, 3]);
        w.str("");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.str("s").unwrap(), "héllo wörld");
        assert_eq!(r.bytes("b").unwrap(), &[1, 2, 3]);
        assert_eq!(r.str("s").unwrap(), "");
    }

    #[test]
    fn invalid_utf8_is_typed() {
        let mut w = Writer::new();
        w.bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.str("s"), Err(CodecError::InvalidUtf8 { .. })));
    }

    #[test]
    fn truncation_is_typed_not_a_panic() {
        let mut w = Writer::new();
        w.u64(42);
        w.str("hello");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let a = r.u64();
            let b = r.str("s");
            assert!(a.is_err() || b.is_err(), "cut at {cut} must fail somewhere");
        }
    }

    #[test]
    fn implausible_length_is_rejected() {
        let mut w = Writer::new();
        w.varint(u64::MAX / 2); // claims an enormous byte string
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.bytes("payload"),
            Err(CodecError::ImplausibleLength { .. })
        ));
    }

    #[test]
    fn delta_seq_roundtrip() {
        let seqs: Vec<Vec<u32>> = vec![
            vec![],
            vec![0],
            vec![7],
            vec![0, 1, 2, 3],
            vec![5, 100, 101, 4000, u32::MAX],
        ];
        let mut w = Writer::new();
        for s in &seqs {
            w.delta_seq(s.iter().copied());
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for s in &seqs {
            assert_eq!(&r.delta_seq("seq").unwrap(), s);
        }
        assert!(r.is_exhausted());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check values for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"koios snapshot section payload".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
