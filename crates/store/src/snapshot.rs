//! The versioned snapshot container: sections, checksums, read/write.
//!
//! ## File layout
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ header   magic "KOIOSNAP" (8B) · format version u32 ·        │
//! │          section count u32                                   │
//! ├──────────────────────────────────────────────────────────────┤
//! │ table    per section: kind u32 · offset u64 · len u64 ·      │
//! │          crc32 u32                      (24 bytes per entry) │
//! ├──────────────────────────────────────────────────────────────┤
//! │ payloads Meta · Repository · [Embeddings] ·                  │
//! │          InvertedIndex × n (shard order) · [MinHash] ·       │
//! │          Delta × m (append order)                            │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Everything is little-endian (see [`crate::codec`]). Each section is
//! guarded by its own CRC-32, so a flipped bit anywhere in a payload is
//! caught before any of it is decoded; the section table is bounds-checked
//! against the file length, so truncation is caught before any seek. All
//! failures are typed [`StoreError`]s — a corrupt snapshot can never panic
//! the loader.
//!
//! ## Deltas (format v2)
//!
//! A snapshot is a **base** (the sections above the `Delta` rows) plus an
//! append-only chain of delta sections, each holding a batch of
//! [`CorpusOp`]s recorded by a live engine ([`append_delta`]). On load,
//! [`read_snapshot`] replays the chain through the same
//! [`koios_index::live::apply_op`] the live engine used, so a reloaded
//! engine is byte-identical to the one that wrote the deltas. The chain is
//! tamper-evident: every delta records its parent checksum — the CRC-32
//! folded over the base section checksums for the first delta, the previous
//! delta's own checksum after that — and a mismatch fails with
//! [`StoreError::DeltaChainBroken`] before any op is applied.
//! [`compact`] folds the chain into a fresh base.
//!
//! [`SnapshotMeta::read`] inspects a snapshot — layout, counts, section
//! sizes, the delta chain's epochs and parent checksums — by reading only
//! the header, the table, the small Meta section and each delta's fixed
//! header, without touching the (much larger) payloads. [`write_snapshot`]
//! writes to a temporary sibling file and renames it into place, so a crash
//! mid-write never leaves a half-written snapshot under the final name.

use crate::codec::{crc32, CodecError, Reader, Writer};
use koios_common::{SetId, TokenId};
use koios_embed::ops::CorpusOp;
use koios_embed::repository::{Repository, RepositoryBuilder};
use koios_embed::vectors::Embeddings;
use koios_index::inverted::InvertedIndex;
use koios_index::minhash::{MinHashIndex, MinHashParams};
use std::fmt;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"KOIOSNAP";

/// Current snapshot format version; readers reject anything newer and
/// accept anything older. v1: base sections only. v2: the repository
/// section carries a trailing tombstone list and `Delta` sections may
/// follow the base.
pub const FORMAT_VERSION: u32 = 2;

/// Conventional file extension for snapshots (`engine.ksnap`).
pub const SNAPSHOT_EXT: &str = "ksnap";

const HEADER_LEN: usize = 16;
const TABLE_ENTRY_LEN: usize = 24;
/// Sanity bound on the section count: a corrupt header cannot make the
/// reader allocate an absurd table. Large enough for thousands of shards.
const MAX_SECTIONS: u32 = 16_384;

/// What a section holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionKind {
    /// Layout and counts (small; read by [`SnapshotMeta::read`]).
    Meta,
    /// Vocabulary strings + sets (`Repository`).
    Repository,
    /// Token vectors (`Embeddings`, bit-exact `f32`s).
    Embeddings,
    /// One inverted index; repeated once per shard for partitioned
    /// layouts, in shard order.
    InvertedIndex,
    /// MinHash-LSH signatures (`MinHashIndex`; band tables are derived and
    /// rebuilt on load).
    MinHash,
    /// One appended batch of corpus mutations (format v2): a fixed header
    /// (parent checksum + epoch) followed by encoded [`CorpusOp`]s,
    /// replayed onto the base state on load.
    Delta,
}

impl SectionKind {
    fn to_u32(self) -> u32 {
        match self {
            SectionKind::Meta => 0,
            SectionKind::Repository => 1,
            SectionKind::Embeddings => 2,
            SectionKind::InvertedIndex => 3,
            SectionKind::MinHash => 4,
            SectionKind::Delta => 5,
        }
    }

    fn from_u32(v: u32) -> Option<Self> {
        match v {
            0 => Some(SectionKind::Meta),
            1 => Some(SectionKind::Repository),
            2 => Some(SectionKind::Embeddings),
            3 => Some(SectionKind::InvertedIndex),
            4 => Some(SectionKind::MinHash),
            5 => Some(SectionKind::Delta),
            _ => None,
        }
    }

    /// A short label for error messages.
    pub fn name(self) -> &'static str {
        match self {
            SectionKind::Meta => "meta",
            SectionKind::Repository => "repository",
            SectionKind::Embeddings => "embeddings",
            SectionKind::InvertedIndex => "inverted-index",
            SectionKind::MinHash => "minhash",
            SectionKind::Delta => "delta",
        }
    }
}

/// How the snapshotted engine was laid out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotLayout {
    /// One engine over one repository-wide inverted index.
    Single,
    /// A sharded engine: one inverted index per partition.
    Partitioned {
        /// Number of shards (equals the number of inverted-index
        /// sections).
        partitions: u32,
        /// The deterministic shard-assignment seed the engine was built
        /// with.
        seed: u64,
    },
}

impl SnapshotLayout {
    /// A human-readable description (`"single"` / `"partitioned(8)"`).
    pub fn describe(&self) -> String {
        match self {
            SnapshotLayout::Single => "single".to_string(),
            SnapshotLayout::Partitioned { partitions, .. } => {
                format!("partitioned({partitions})")
            }
        }
    }
}

/// One entry of the section table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionInfo {
    /// What the section holds.
    pub kind: SectionKind,
    /// Absolute byte offset of the payload.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// CRC-32 of the payload.
    pub crc: u32,
}

/// Provenance of one delta section, readable from its fixed header without
/// decoding the ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaInfo {
    /// Checksum of this delta's parent: the folded base checksum for the
    /// first delta, the previous delta's `crc` after that.
    pub parent_crc: u32,
    /// CRC-32 of this delta's payload (its identity in the chain).
    pub crc: u32,
    /// Engine epoch at the time the batch was appended.
    pub epoch: u64,
    /// Number of ops in the batch.
    pub ops: usize,
}

/// Everything a snapshot says about itself, readable without decoding the
/// payload sections (see [`SnapshotMeta::read`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// The format version the file was written with.
    pub format_version: u32,
    /// Single or partitioned engine layout.
    pub layout: SnapshotLayout,
    /// Number of sets in the repository **base** (live + tombstoned;
    /// replayed deltas can grow this).
    pub num_sets: usize,
    /// Vocabulary size of the repository base.
    pub vocab_size: usize,
    /// Number of inverted-index sections (1, or the partition count).
    pub num_indexes: usize,
    /// Whether a token-vector section is present.
    pub has_embeddings: bool,
    /// Whether a MinHash section is present.
    pub has_minhash: bool,
    /// Total file size in bytes.
    pub total_bytes: u64,
    /// The section table (kind, offset, length, checksum per section).
    pub sections: Vec<SectionInfo>,
    /// The delta chain, in replay order (empty for a fresh base).
    pub deltas: Vec<DeltaInfo>,
}

impl SnapshotMeta {
    /// The engine epoch of the newest delta (0 for a fresh or compacted
    /// base — bases do not record an epoch).
    pub fn latest_epoch(&self) -> u64 {
        self.deltas.last().map(|d| d.epoch).unwrap_or(0)
    }
}

/// Why a snapshot could not be written or read.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not a Koios snapshot.
    BadMagic,
    /// The file's format version is newer than this reader understands.
    UnsupportedVersion(u32),
    /// The file is shorter than its header/table claims.
    Truncated {
        /// Bytes the header or table said must exist.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// A section's payload does not match its recorded CRC-32.
    ChecksumMismatch {
        /// The damaged section.
        kind: SectionKind,
    },
    /// A payload failed to decode (truncated mid-value, bad varint, …).
    Corrupt {
        /// The section being decoded.
        kind: SectionKind,
        /// The codec-level failure.
        source: CodecError,
    },
    /// A required section is absent.
    MissingSection(SectionKind),
    /// The file decoded but its contents are inconsistent (out-of-range
    /// ids, counts disagreeing with the meta section, …).
    Malformed(String),
    /// The snapshot's engine layout does not match what the caller asked
    /// to restore (e.g. loading a sharded snapshot into a single engine).
    LayoutMismatch {
        /// The layout the caller required.
        expected: &'static str,
        /// The layout the snapshot holds.
        found: String,
    },
    /// A delta section's recorded parent checksum does not match the chain
    /// tip — the base was rewritten, a delta was dropped, or sections were
    /// reordered after the delta was appended.
    DeltaChainBroken {
        /// Position of the offending delta in the chain (0-based).
        index: usize,
        /// The chain tip the delta should descend from.
        expected: u32,
        /// The parent checksum the delta actually records.
        found: u32,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
            StoreError::BadMagic => write!(f, "not a Koios snapshot (bad magic)"),
            StoreError::UnsupportedVersion(v) => write!(
                f,
                "unsupported snapshot format version {v} (this reader understands ≤ {FORMAT_VERSION})"
            ),
            StoreError::Truncated { expected, actual } => write!(
                f,
                "snapshot truncated: header declares {expected} bytes, file has {actual}"
            ),
            StoreError::ChecksumMismatch { kind } => {
                write!(f, "checksum mismatch in {} section", kind.name())
            }
            StoreError::Corrupt { kind, source } => {
                write!(f, "corrupt {} section: {source}", kind.name())
            }
            StoreError::MissingSection(kind) => {
                write!(f, "snapshot is missing its {} section", kind.name())
            }
            StoreError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
            StoreError::LayoutMismatch { expected, found } => write!(
                f,
                "snapshot layout mismatch: expected a {expected} engine, snapshot holds {found}"
            ),
            StoreError::DeltaChainBroken {
                index,
                expected,
                found,
            } => write!(
                f,
                "delta chain broken at delta {index}: parent checksum {found:#010x} \
                 does not match chain tip {expected:#010x}"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Borrowed query-ready state to serialize (the write-side dual of
/// [`SnapshotState`]). Assemble one from live structures — engines expose
/// a convenience wrapper, see `EngineBackend::write_snapshot` in
/// `koios-core`.
#[derive(Debug)]
pub struct SnapshotView<'a> {
    /// The repository (sets, names, interned vocabulary).
    pub repository: &'a Repository,
    /// Token vectors, when the engine's similarity is embedding-based.
    pub embeddings: Option<&'a Embeddings>,
    /// Single or partitioned layout.
    pub layout: SnapshotLayout,
    /// The inverted index(es): exactly one for [`SnapshotLayout::Single`],
    /// one per shard (in shard order) for
    /// [`SnapshotLayout::Partitioned`].
    pub indexes: Vec<&'a InvertedIndex>,
    /// An optional MinHash-LSH index (signatures only; band tables are
    /// rebuilt on load).
    pub minhash: Option<&'a MinHashIndex>,
}

/// Owned query-ready state restored from a snapshot.
#[derive(Debug)]
pub struct SnapshotState {
    /// The snapshot's self-description.
    pub meta: SnapshotMeta,
    /// The restored repository (token ids identical to the saved one).
    pub repository: Repository,
    /// Restored token vectors (bit-identical), if saved.
    pub embeddings: Option<Embeddings>,
    /// The restored inverted index(es), in shard order.
    pub indexes: Vec<InvertedIndex>,
    /// The restored MinHash index, if saved.
    pub minhash: Option<MinHashIndex>,
}

// ---------------------------------------------------------------------------
// Section payload encoders/decoders.
// ---------------------------------------------------------------------------

fn corrupt(kind: SectionKind) -> impl Fn(CodecError) -> StoreError {
    move |source| StoreError::Corrupt { kind, source }
}

fn encode_meta(view: &SnapshotView) -> Vec<u8> {
    let mut w = Writer::new();
    match view.layout {
        SnapshotLayout::Single => w.u8(0),
        SnapshotLayout::Partitioned { partitions, seed } => {
            w.u8(1);
            w.varint(partitions as u64);
            w.u64(seed);
        }
    }
    w.varint(view.repository.num_sets() as u64);
    w.varint(view.repository.vocab_size() as u64);
    w.varint(view.indexes.len() as u64);
    w.u8(view.embeddings.is_some() as u8);
    w.u8(view.minhash.is_some() as u8);
    w.into_bytes()
}

fn decode_meta(
    payload: &[u8],
    format_version: u32,
    sections: Vec<SectionInfo>,
    total_bytes: u64,
) -> Result<SnapshotMeta, StoreError> {
    let kind = SectionKind::Meta;
    let mut r = Reader::new(payload);
    let layout = match r.u8().map_err(corrupt(kind))? {
        0 => SnapshotLayout::Single,
        1 => {
            let partitions = r.varint().map_err(corrupt(kind))?;
            let seed = r.u64().map_err(corrupt(kind))?;
            if partitions == 0 || partitions > u32::MAX as u64 {
                return Err(StoreError::Malformed(format!(
                    "partition count {partitions} out of range"
                )));
            }
            SnapshotLayout::Partitioned {
                partitions: partitions as u32,
                seed,
            }
        }
        other => return Err(StoreError::Malformed(format!("unknown layout tag {other}"))),
    };
    let num_sets = r.varint().map_err(corrupt(kind))? as usize;
    let vocab_size = r.varint().map_err(corrupt(kind))? as usize;
    let num_indexes = r.varint().map_err(corrupt(kind))? as usize;
    let has_embeddings = r.u8().map_err(corrupt(kind))? != 0;
    let has_minhash = r.u8().map_err(corrupt(kind))? != 0;
    if !r.is_exhausted() {
        return Err(StoreError::Malformed(
            "trailing bytes in meta section".to_string(),
        ));
    }
    let expected_indexes = match layout {
        SnapshotLayout::Single => 1,
        SnapshotLayout::Partitioned { partitions, .. } => partitions as usize,
    };
    if num_indexes != expected_indexes {
        return Err(StoreError::Malformed(format!(
            "layout {} declares {expected_indexes} index(es) but meta records {num_indexes}",
            layout.describe()
        )));
    }
    Ok(SnapshotMeta {
        format_version,
        layout,
        num_sets,
        vocab_size,
        num_indexes,
        has_embeddings,
        has_minhash,
        total_bytes,
        sections,
        // Filled in by the caller from the delta headers (decode_meta only
        // sees the Meta payload).
        deltas: Vec::new(),
    })
}

fn encode_repository(repo: &Repository) -> Vec<u8> {
    let mut w = Writer::new();
    w.varint(repo.vocab_size() as u64);
    for (_, s) in repo.interner().iter() {
        w.str(s);
    }
    w.varint(repo.num_sets() as u64);
    for (id, set) in repo.iter_sets() {
        w.str(repo.set_name(id));
        w.delta_seq(set.iter().map(|t| t.0));
    }
    // v2 trailer: tombstoned set ids (slots are written above either way —
    // the id space stays dense — but removed sets must come back removed).
    // v1 payloads simply end after the sets; the decoder accepts both.
    w.delta_seq(
        repo.tombstones()
            .collect::<Vec<_>>()
            .into_iter()
            .map(|s| s.0),
    );
    w.into_bytes()
}

/// Reads a [`Writer::delta_seq`] sequence straight into its target id
/// type, fusing decoding with the strictness and range validation so each
/// list costs exactly one allocation (the load hot path: one call per set
/// and per posting list).
fn read_id_seq<T>(
    r: &mut Reader,
    what: &'static str,
    kind: SectionKind,
    max: usize,
    wrap: impl Fn(u32) -> T,
) -> Result<Box<[T]>, StoreError> {
    let n = r.checked_len(1, what).map_err(corrupt(kind))?;
    let mut out: Vec<T> = Vec::with_capacity(n);
    let mut prev = 0u64;
    for i in 0..n {
        let delta = r.varint().map_err(corrupt(kind))?;
        if i > 0 && delta == 0 {
            return Err(StoreError::Malformed(format!(
                "{what} ids are not strictly increasing"
            )));
        }
        let v = if i == 0 {
            delta
        } else {
            // A crafted delta near u64::MAX must not wrap past the range
            // check (and must never panic the loader).
            prev.checked_add(delta)
                .ok_or_else(|| StoreError::Malformed(format!("{what} id overflows 64 bits")))?
        };
        if v >= max as u64 {
            return Err(StoreError::Malformed(format!(
                "{what} id {v} out of range (< {max})"
            )));
        }
        prev = v;
        out.push(wrap(v as u32));
    }
    Ok(out.into_boxed_slice())
}

fn decode_repository(payload: &[u8]) -> Result<Repository, StoreError> {
    let kind = SectionKind::Repository;
    let mut r = Reader::new(payload);
    let vocab = r.checked_len(1, "vocabulary").map_err(corrupt(kind))?;
    let mut strings: Vec<&str> = Vec::with_capacity(vocab);
    for _ in 0..vocab {
        strings.push(r.str("vocabulary string").map_err(corrupt(kind))?);
    }
    let num_sets = r.checked_len(1, "set table").map_err(corrupt(kind))?;
    let mut sets: Vec<(String, Vec<TokenId>)> = Vec::with_capacity(num_sets);
    for _ in 0..num_sets {
        let name = r.str("set name").map_err(corrupt(kind))?.to_string();
        let ids = read_id_seq(&mut r, "set element", kind, vocab, TokenId)?;
        sets.push((name, ids.into_vec()));
    }
    // v2 payloads carry a trailing tombstone list; v1 payloads end here.
    let tombstones = if r.is_exhausted() {
        Box::from([])
    } else {
        read_id_seq(&mut r, "tombstone", kind, num_sets, SetId)?
    };
    if !r.is_exhausted() {
        return Err(StoreError::Malformed(
            "trailing bytes in repository section".to_string(),
        ));
    }
    let mut repo = RepositoryBuilder::from_snapshot(strings, sets);
    if repo.vocab_size() != vocab {
        return Err(StoreError::Malformed(
            "duplicate vocabulary strings collapse under interning".to_string(),
        ));
    }
    for &id in tombstones.iter() {
        if !repo.remove_set(id) {
            return Err(StoreError::Malformed(format!(
                "tombstone names set {} twice",
                id.0
            )));
        }
    }
    Ok(repo)
}

fn encode_embeddings(emb: &Embeddings) -> Vec<u8> {
    let mut w = Writer::new();
    w.varint(emb.dim() as u64);
    w.varint(emb.vocab() as u64);
    for &p in emb.present_mask() {
        w.u8(p as u8);
    }
    let data = emb.raw_data();
    for (t, &p) in emb.present_mask().iter().enumerate() {
        if p {
            for &v in &data[t * emb.dim()..(t + 1) * emb.dim()] {
                w.f32(v);
            }
        }
    }
    w.into_bytes()
}

/// Widest embedding row the decoder accepts. Real models are two to three
/// orders of magnitude smaller (FastText: 300); the cap exists so a
/// corrupt length prefix cannot turn `dim * vocab` into a giant
/// allocation while every present flag is 0 (the one case the byte-budget
/// check below cannot bound).
const MAX_EMBED_DIM: usize = 1 << 16;

fn decode_embeddings(payload: &[u8], repo_vocab: usize) -> Result<Embeddings, StoreError> {
    let kind = SectionKind::Embeddings;
    let mut r = Reader::new(payload);
    let dim = r.varint().map_err(corrupt(kind))? as usize;
    if dim == 0 || dim > MAX_EMBED_DIM {
        return Err(StoreError::Malformed(format!(
            "embedding dimension {dim} out of range (1..={MAX_EMBED_DIM})"
        )));
    }
    let vocab = r
        .checked_len(1, "embedding vocabulary")
        .map_err(corrupt(kind))?;
    // Cross-checked against the repository *before* the `dim * vocab`
    // table is allocated, so the allocation is bounded by real repo size.
    if vocab != repo_vocab {
        return Err(StoreError::Malformed(format!(
            "embeddings cover {vocab} tokens, vocabulary has {repo_vocab}"
        )));
    }
    dim.checked_mul(vocab)
        .filter(|&n| n <= isize::MAX as usize / 4)
        .ok_or_else(|| StoreError::Malformed(format!("embedding table {dim}x{vocab} overflows")))?;
    let mut present = Vec::with_capacity(vocab);
    for _ in 0..vocab {
        match r.u8().map_err(corrupt(kind))? {
            0 => present.push(false),
            1 => present.push(true),
            other => {
                return Err(StoreError::Malformed(format!(
                    "present flag must be 0 or 1, got {other}"
                )))
            }
        }
    }
    let present_count = present.iter().filter(|&&p| p).count();
    let need = present_count as u64 * dim as u64 * 4;
    if need > r.remaining() as u64 {
        return Err(StoreError::Corrupt {
            kind,
            source: CodecError::Truncated {
                offset: r.pos(),
                what: "embedding vectors",
            },
        });
    }
    let mut data = vec![0.0f32; dim * vocab];
    for (t, &p) in present.iter().enumerate() {
        if p {
            r.f32_into(&mut data[t * dim..(t + 1) * dim])
                .map_err(corrupt(kind))?;
        }
    }
    if !r.is_exhausted() {
        return Err(StoreError::Malformed(
            "trailing bytes in embeddings section".to_string(),
        ));
    }
    Ok(Embeddings::from_raw(dim, data, present))
}

fn encode_inverted(index: &InvertedIndex) -> Vec<u8> {
    let mut w = Writer::new();
    w.varint(index.num_tokens() as u64);
    for postings in index.iter_postings() {
        w.delta_seq(postings.iter().map(|s| s.0));
    }
    w.into_bytes()
}

fn decode_inverted(
    payload: &[u8],
    vocab: usize,
    num_sets: usize,
) -> Result<InvertedIndex, StoreError> {
    let kind = SectionKind::InvertedIndex;
    let mut r = Reader::new(payload);
    let tokens = r.checked_len(1, "posting table").map_err(corrupt(kind))?;
    if tokens != vocab {
        return Err(StoreError::Malformed(format!(
            "inverted index covers {tokens} tokens, repository vocabulary has {vocab}"
        )));
    }
    let mut postings: Vec<Box<[SetId]>> = Vec::with_capacity(tokens);
    for _ in 0..tokens {
        postings.push(read_id_seq(&mut r, "posting", kind, num_sets, SetId)?);
    }
    if !r.is_exhausted() {
        return Err(StoreError::Malformed(
            "trailing bytes in inverted-index section".to_string(),
        ));
    }
    Ok(InvertedIndex::from_postings(postings))
}

fn encode_minhash(mh: &MinHashIndex) -> Vec<u8> {
    let p = mh.params();
    let mut w = Writer::new();
    w.varint(p.bands as u64);
    w.varint(p.rows_per_band as u64);
    w.u64(p.seed);
    w.varint(mh.signatures().len() as u64);
    for sig in mh.signatures() {
        for &v in sig.iter() {
            w.u64(v);
        }
    }
    w.into_bytes()
}

fn decode_minhash(payload: &[u8]) -> Result<MinHashIndex, StoreError> {
    let kind = SectionKind::MinHash;
    let mut r = Reader::new(payload);
    let bands = r.varint().map_err(corrupt(kind))? as usize;
    let rows = r.varint().map_err(corrupt(kind))? as usize;
    let seed = r.u64().map_err(corrupt(kind))?;
    if bands == 0 || rows == 0 {
        return Err(StoreError::Malformed(
            "minhash bands and rows must be positive".to_string(),
        ));
    }
    let sig_bytes = bands
        .checked_mul(rows)
        .and_then(|n| n.checked_mul(8))
        .ok_or_else(|| StoreError::Malformed("minhash signature length overflows".to_string()))?;
    let sig_len = sig_bytes / 8;
    let count = r
        .checked_len(sig_bytes, "signature table")
        .map_err(corrupt(kind))?;
    let mut signatures = Vec::with_capacity(count);
    for _ in 0..count {
        let mut sig = Vec::with_capacity(sig_len);
        for _ in 0..sig_len {
            sig.push(r.u64().map_err(corrupt(kind))?);
        }
        signatures.push(sig.into_boxed_slice());
    }
    if !r.is_exhausted() {
        return Err(StoreError::Malformed(
            "trailing bytes in minhash section".to_string(),
        ));
    }
    Ok(MinHashIndex::from_signatures(
        MinHashParams {
            bands,
            rows_per_band: rows,
            seed,
        },
        signatures,
    ))
}

// ---------------------------------------------------------------------------
// Delta sections: op codec and checksum chaining.
// ---------------------------------------------------------------------------

/// Fixed bytes at the head of every delta payload: parent CRC-32 (4) +
/// epoch (8). Everything after is the varint op count and the encoded ops.
const DELTA_HEADER_LEN: usize = 12;

/// The chain tip a snapshot's **first** delta must descend from: the
/// CRC-32 folded over the base sections' checksums (little-endian, table
/// order). Any change to any base payload changes this value, so a delta
/// appended against one base can never silently replay onto another.
fn base_chain_tip(sections: &[SectionInfo]) -> u32 {
    let mut bytes = Vec::with_capacity(sections.len() * 4);
    for s in sections.iter().filter(|s| s.kind != SectionKind::Delta) {
        bytes.extend_from_slice(&s.crc.to_le_bytes());
    }
    crc32(&bytes)
}

fn encode_op(w: &mut Writer, op: &CorpusOp) {
    match op {
        CorpusOp::Insert {
            name,
            tokens,
            vectors,
        } => {
            w.u8(0);
            w.str(name);
            w.varint(tokens.len() as u64);
            for t in tokens {
                w.str(t);
            }
            w.varint(vectors.len() as u64);
            for (t, row) in vectors {
                w.str(t);
                w.varint(row.len() as u64);
                for &v in row {
                    w.f32(v);
                }
            }
        }
        CorpusOp::Remove { set } => {
            w.u8(1);
            w.varint(set.0 as u64);
        }
    }
}

fn decode_op(r: &mut Reader) -> Result<CorpusOp, StoreError> {
    let kind = SectionKind::Delta;
    match r.u8().map_err(corrupt(kind))? {
        0 => {
            let name = r.str("op set name").map_err(corrupt(kind))?.to_string();
            let num_tokens = r.checked_len(1, "op tokens").map_err(corrupt(kind))?;
            let mut tokens = Vec::with_capacity(num_tokens);
            for _ in 0..num_tokens {
                tokens.push(r.str("op token").map_err(corrupt(kind))?.to_string());
            }
            let num_vectors = r.checked_len(1, "op vectors").map_err(corrupt(kind))?;
            let mut vectors = Vec::with_capacity(num_vectors);
            for _ in 0..num_vectors {
                let token = r.str("op vector token").map_err(corrupt(kind))?.to_string();
                let dim = r.checked_len(4, "op vector row").map_err(corrupt(kind))?;
                let mut row = vec![0.0f32; dim];
                r.f32_into(&mut row).map_err(corrupt(kind))?;
                vectors.push((token, row));
            }
            Ok(CorpusOp::Insert {
                name,
                tokens,
                vectors,
            })
        }
        1 => {
            let set = r.varint().map_err(corrupt(kind))?;
            if set > u32::MAX as u64 {
                return Err(StoreError::Malformed(format!(
                    "remove op names set {set}, beyond the 32-bit id space"
                )));
            }
            Ok(CorpusOp::Remove {
                set: SetId(set as u32),
            })
        }
        other => Err(StoreError::Malformed(format!("unknown op tag {other}"))),
    }
}

fn encode_delta(parent_crc: u32, epoch: u64, ops: &[CorpusOp]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(parent_crc);
    w.u64(epoch);
    w.varint(ops.len() as u64);
    for op in ops {
        encode_op(&mut w, op);
    }
    w.into_bytes()
}

fn decode_delta(payload: &[u8]) -> Result<(u32, u64, Vec<CorpusOp>), StoreError> {
    let kind = SectionKind::Delta;
    let mut r = Reader::new(payload);
    let parent_crc = r.u32().map_err(corrupt(kind))?;
    let epoch = r.u64().map_err(corrupt(kind))?;
    let count = r.checked_len(1, "delta ops").map_err(corrupt(kind))?;
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        ops.push(decode_op(&mut r)?);
    }
    if !r.is_exhausted() {
        return Err(StoreError::Malformed(
            "trailing bytes in delta section".to_string(),
        ));
    }
    Ok((parent_crc, epoch, ops))
}

/// Decodes only a delta's fixed header and op count (the cheap-inspection
/// path of [`SnapshotMeta::read`]; `head` need not contain the ops).
fn decode_delta_head(head: &[u8], crc: u32) -> Result<DeltaInfo, StoreError> {
    let kind = SectionKind::Delta;
    let mut r = Reader::new(head);
    let parent_crc = r.u32().map_err(corrupt(kind))?;
    let epoch = r.u64().map_err(corrupt(kind))?;
    let ops = r.varint().map_err(corrupt(kind))? as usize;
    Ok(DeltaInfo {
        parent_crc,
        crc,
        epoch,
        ops,
    })
}

/// Walks the delta chain, verifying each delta's parent checksum against
/// the running tip. Returns the infos in replay order.
fn verify_chain(
    sections: &[SectionInfo],
    read_head: impl Fn(&SectionInfo) -> Result<DeltaInfo, StoreError>,
) -> Result<Vec<DeltaInfo>, StoreError> {
    let mut tip = base_chain_tip(sections);
    let mut deltas = Vec::new();
    for info in sections.iter().filter(|s| s.kind == SectionKind::Delta) {
        let head = read_head(info)?;
        if head.parent_crc != tip {
            return Err(StoreError::DeltaChainBroken {
                index: deltas.len(),
                expected: tip,
                found: head.parent_crc,
            });
        }
        tip = head.crc;
        deltas.push(head);
    }
    Ok(deltas)
}

// ---------------------------------------------------------------------------
// Container assembly and parsing.
// ---------------------------------------------------------------------------

/// Serializes `view` to `path` (temporary file + rename, so the final name
/// only ever holds a complete snapshot). Returns the written meta.
pub fn write_snapshot(path: &Path, view: &SnapshotView) -> Result<SnapshotMeta, StoreError> {
    let expected_indexes = match view.layout {
        SnapshotLayout::Single => 1,
        SnapshotLayout::Partitioned { partitions, .. } => partitions as usize,
    };
    if view.indexes.len() != expected_indexes {
        return Err(StoreError::Malformed(format!(
            "layout {} requires {expected_indexes} index(es), got {}",
            view.layout.describe(),
            view.indexes.len()
        )));
    }

    let mut sections: Vec<(SectionKind, Vec<u8>)> = Vec::with_capacity(4 + view.indexes.len());
    sections.push((SectionKind::Meta, encode_meta(view)));
    sections.push((SectionKind::Repository, encode_repository(view.repository)));
    if let Some(emb) = view.embeddings {
        sections.push((SectionKind::Embeddings, encode_embeddings(emb)));
    }
    for index in &view.indexes {
        sections.push((SectionKind::InvertedIndex, encode_inverted(index)));
    }
    if let Some(mh) = view.minhash {
        sections.push((SectionKind::MinHash, encode_minhash(mh)));
    }

    let table_start = HEADER_LEN as u64;
    let payload_start = table_start + (sections.len() * TABLE_ENTRY_LEN) as u64;
    let mut infos: Vec<SectionInfo> = Vec::with_capacity(sections.len());
    let mut offset = payload_start;
    for (kind, payload) in &sections {
        infos.push(SectionInfo {
            kind: *kind,
            offset,
            len: payload.len() as u64,
            crc: crc32(payload),
        });
        offset += payload.len() as u64;
    }

    let mut file = Vec::with_capacity(offset as usize);
    file.extend_from_slice(&MAGIC);
    file.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    file.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for info in &infos {
        file.extend_from_slice(&info.kind.to_u32().to_le_bytes());
        file.extend_from_slice(&info.offset.to_le_bytes());
        file.extend_from_slice(&info.len.to_le_bytes());
        file.extend_from_slice(&info.crc.to_le_bytes());
    }
    for (_, payload) in &sections {
        file.extend_from_slice(payload);
    }

    // Temp-then-rename: readers never observe a partially written file.
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, &file)?;
    std::fs::rename(&tmp, path)?;

    decode_meta(&sections[0].1, FORMAT_VERSION, infos, file.len() as u64)
}

/// Parses the header and section table, validating magic, version, section
/// count and every section's bounds against `file_len`. Returns the file's
/// format version (1..=[`FORMAT_VERSION`]) alongside the table.
fn parse_table(head: &[u8], file_len: u64) -> Result<(u32, Vec<SectionInfo>), StoreError> {
    if head.len() < HEADER_LEN {
        return Err(StoreError::Truncated {
            expected: HEADER_LEN as u64,
            actual: head.len() as u64,
        });
    }
    if head[..8] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes(head[8..12].try_into().unwrap());
    if version == 0 || version > FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let count = u32::from_le_bytes(head[12..16].try_into().unwrap());
    if count == 0 || count > MAX_SECTIONS {
        return Err(StoreError::Malformed(format!(
            "implausible section count {count}"
        )));
    }
    let table_end = HEADER_LEN as u64 + count as u64 * TABLE_ENTRY_LEN as u64;
    if (head.len() as u64) < table_end || file_len < table_end {
        return Err(StoreError::Truncated {
            expected: table_end,
            actual: file_len.min(head.len() as u64),
        });
    }
    let mut infos = Vec::with_capacity(count as usize);
    for i in 0..count as usize {
        let e = &head[HEADER_LEN + i * TABLE_ENTRY_LEN..HEADER_LEN + (i + 1) * TABLE_ENTRY_LEN];
        let raw_kind = u32::from_le_bytes(e[0..4].try_into().unwrap());
        let kind = SectionKind::from_u32(raw_kind)
            .ok_or_else(|| StoreError::Malformed(format!("unknown section kind {raw_kind}")))?;
        let offset = u64::from_le_bytes(e[4..12].try_into().unwrap());
        let len = u64::from_le_bytes(e[12..20].try_into().unwrap());
        let crc = u32::from_le_bytes(e[20..24].try_into().unwrap());
        let end = offset
            .checked_add(len)
            .ok_or_else(|| StoreError::Malformed("section bounds overflow".to_string()))?;
        if offset < table_end || end > file_len {
            return Err(StoreError::Truncated {
                expected: end,
                actual: file_len,
            });
        }
        infos.push(SectionInfo {
            kind,
            offset,
            len,
            crc,
        });
    }
    Ok((version, infos))
}

fn checked_section<'a>(bytes: &'a [u8], info: &SectionInfo) -> Result<&'a [u8], StoreError> {
    let payload = &bytes[info.offset as usize..(info.offset + info.len) as usize];
    if crc32(payload) != info.crc {
        return Err(StoreError::ChecksumMismatch { kind: info.kind });
    }
    Ok(payload)
}

impl SnapshotMeta {
    /// Reads a snapshot's self-description — header, section table, the
    /// small Meta section and each delta's fixed header — without loading
    /// or decoding the payload sections. Cheap on arbitrarily large
    /// snapshots: the chain length, parent checksums and epochs of every
    /// delta are reported (and the chain verified) from fixed-size
    /// delta-header reads.
    pub fn read(path: &Path) -> Result<SnapshotMeta, StoreError> {
        let mut f = std::fs::File::open(path)?;
        let file_len = f.metadata()?.len();
        // Header + table: bounded by MAX_SECTIONS, read in one go.
        let head_len =
            (file_len as usize).min(HEADER_LEN + MAX_SECTIONS as usize * TABLE_ENTRY_LEN);
        let mut head = vec![0u8; head_len];
        f.read_exact(&mut head)?;
        let (version, sections) = parse_table(&head, file_len)?;
        let meta_info = *sections
            .iter()
            .find(|s| s.kind == SectionKind::Meta)
            .ok_or(StoreError::MissingSection(SectionKind::Meta))?;
        let mut payload = vec![0u8; meta_info.len as usize];
        f.seek(SeekFrom::Start(meta_info.offset))?;
        f.read_exact(&mut payload)?;
        if crc32(&payload) != meta_info.crc {
            return Err(StoreError::ChecksumMismatch {
                kind: SectionKind::Meta,
            });
        }
        let mut meta = decode_meta(&payload, version, sections, file_len)?;
        let f = std::cell::RefCell::new(f);
        meta.deltas = verify_chain(&meta.sections, |info| {
            // Only the fixed header plus the op-count varint (≤ 10 bytes).
            let want = (info.len as usize).min(DELTA_HEADER_LEN + 10);
            let mut buf = vec![0u8; want];
            let mut f = f.borrow_mut();
            f.seek(SeekFrom::Start(info.offset))?;
            f.read_exact(&mut buf)?;
            decode_delta_head(&buf, info.crc)
        })?;
        Ok(meta)
    }
}

/// Reads and fully restores a snapshot: every section checksum is verified
/// before decoding, the decoded contents are cross-validated against the
/// meta section (counts, layout, id ranges), and the delta chain — checked
/// link by link — is replayed onto the base through the same
/// [`koios_index::live::apply_op`] a live engine mutates with, so the
/// restored state is byte-identical to the engine that appended the
/// deltas.
pub fn read_snapshot(path: &Path) -> Result<SnapshotState, StoreError> {
    let bytes = std::fs::read(path)?;
    let (version, sections) = parse_table(&bytes, bytes.len() as u64)?;

    let meta_info = sections
        .iter()
        .find(|s| s.kind == SectionKind::Meta)
        .copied()
        .ok_or(StoreError::MissingSection(SectionKind::Meta))?;
    let meta = decode_meta(
        checked_section(&bytes, &meta_info)?,
        version,
        sections.clone(),
        bytes.len() as u64,
    )?;

    let repo_info = sections
        .iter()
        .find(|s| s.kind == SectionKind::Repository)
        .copied()
        .ok_or(StoreError::MissingSection(SectionKind::Repository))?;
    let mut repository = decode_repository(checked_section(&bytes, &repo_info)?)?;
    if repository.num_sets() != meta.num_sets || repository.vocab_size() != meta.vocab_size {
        return Err(StoreError::Malformed(format!(
            "repository holds {} sets / {} tokens, meta records {} / {}",
            repository.num_sets(),
            repository.vocab_size(),
            meta.num_sets,
            meta.vocab_size
        )));
    }

    let mut embeddings = None;
    let mut indexes = Vec::new();
    let mut minhash = None;
    for info in &sections {
        match info.kind {
            SectionKind::Meta | SectionKind::Repository => {}
            SectionKind::Delta => {} // replayed below, after the base is validated
            SectionKind::Embeddings => {
                if embeddings.is_some() {
                    return Err(StoreError::Malformed(
                        "duplicate embeddings section".to_string(),
                    ));
                }
                embeddings = Some(decode_embeddings(
                    checked_section(&bytes, info)?,
                    repository.vocab_size(),
                )?);
            }
            SectionKind::InvertedIndex => indexes.push(decode_inverted(
                checked_section(&bytes, info)?,
                repository.vocab_size(),
                repository.num_sets(),
            )?),
            SectionKind::MinHash => {
                if minhash.is_some() {
                    return Err(StoreError::Malformed(
                        "duplicate minhash section".to_string(),
                    ));
                }
                minhash = Some(decode_minhash(checked_section(&bytes, info)?)?);
            }
        }
    }

    if indexes.is_empty() {
        return Err(StoreError::MissingSection(SectionKind::InvertedIndex));
    }
    if indexes.len() != meta.num_indexes {
        return Err(StoreError::Malformed(format!(
            "{} inverted-index section(s) present, meta records {}",
            indexes.len(),
            meta.num_indexes
        )));
    }
    if embeddings.is_some() != meta.has_embeddings || minhash.is_some() != meta.has_minhash {
        return Err(StoreError::Malformed(
            "optional sections disagree with the meta section".to_string(),
        ));
    }

    // Replay the delta chain. Routing must match the engine that appended
    // the ops: the workspace's single shard-assignment function for
    // partitioned layouts, shard 0 for single ones.
    let mut meta = meta;
    let route: Box<dyn Fn(SetId) -> usize> = match meta.layout {
        SnapshotLayout::Single => Box::new(|_| 0),
        SnapshotLayout::Partitioned { partitions, seed } => {
            let n = partitions as usize;
            Box::new(move |id| koios_common::fingerprint::partition_of(seed, id, n))
        }
    };
    let mut tip = base_chain_tip(&sections);
    for info in sections.iter().filter(|s| s.kind == SectionKind::Delta) {
        let (parent_crc, epoch, ops) = decode_delta(checked_section(&bytes, info)?)?;
        if parent_crc != tip {
            return Err(StoreError::DeltaChainBroken {
                index: meta.deltas.len(),
                expected: tip,
                found: parent_crc,
            });
        }
        tip = info.crc;
        let mut index_refs: Vec<&mut InvertedIndex> = indexes.iter_mut().collect();
        for op in &ops {
            koios_index::live::apply_op(
                &mut repository,
                embeddings.as_mut(),
                &mut index_refs,
                minhash.as_mut(),
                &route,
                op,
            )
            .map_err(|e| {
                StoreError::Malformed(format!("delta {} replay failed: {e}", meta.deltas.len()))
            })?;
        }
        meta.deltas.push(DeltaInfo {
            parent_crc,
            crc: info.crc,
            epoch,
            ops: ops.len(),
        });
    }

    Ok(SnapshotState {
        meta,
        repository,
        embeddings,
        indexes,
        minhash,
    })
}

/// Appends one batch of [`CorpusOp`]s to an existing snapshot as a new
/// delta section, chained to the current tip by checksum. The base payloads
/// are copied byte-for-byte (their checksums — and therefore the chain —
/// are unchanged); the whole file is rewritten through the same
/// temp-then-rename discipline as [`write_snapshot`], so a crash mid-append
/// leaves the previous snapshot intact. A v1 file is upgraded to v2 in
/// passing (the payload bytes still decode identically). Every existing
/// section's checksum is verified first, so corruption is caught at append
/// time rather than compounded.
///
/// `epoch` is the appending engine's corpus epoch after applying `ops`
/// (pure provenance — replay order alone defines the restored state).
pub fn append_delta(path: &Path, ops: &[CorpusOp], epoch: u64) -> Result<SnapshotMeta, StoreError> {
    let bytes = std::fs::read(path)?;
    let (version, sections) = parse_table(&bytes, bytes.len() as u64)?;
    // Verify everything we are about to copy, and find the chain tip.
    let mut tip = base_chain_tip(&sections);
    let mut delta_idx = 0usize;
    for info in &sections {
        let payload = checked_section(&bytes, info)?;
        if info.kind == SectionKind::Delta {
            let head = &payload[..DELTA_HEADER_LEN.min(payload.len())];
            let parent_crc = Reader::new(head)
                .u32()
                .map_err(corrupt(SectionKind::Delta))?;
            if parent_crc != tip {
                return Err(StoreError::DeltaChainBroken {
                    index: delta_idx,
                    expected: tip,
                    found: parent_crc,
                });
            }
            tip = info.crc;
            delta_idx += 1;
        }
    }
    let _ = version; // v1 inputs are re-written as v2 below.

    let delta = encode_delta(tip, epoch, ops);
    let count = sections.len() + 1;
    let table_start = HEADER_LEN as u64;
    let payload_start = table_start + (count * TABLE_ENTRY_LEN) as u64;
    let mut infos: Vec<SectionInfo> = Vec::with_capacity(count);
    let mut offset = payload_start;
    for info in &sections {
        infos.push(SectionInfo {
            kind: info.kind,
            offset,
            len: info.len,
            crc: info.crc,
        });
        offset += info.len;
    }
    infos.push(SectionInfo {
        kind: SectionKind::Delta,
        offset,
        len: delta.len() as u64,
        crc: crc32(&delta),
    });
    offset += delta.len() as u64;

    let mut file = Vec::with_capacity(offset as usize);
    file.extend_from_slice(&MAGIC);
    file.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    file.extend_from_slice(&(count as u32).to_le_bytes());
    for info in &infos {
        file.extend_from_slice(&info.kind.to_u32().to_le_bytes());
        file.extend_from_slice(&info.offset.to_le_bytes());
        file.extend_from_slice(&info.len.to_le_bytes());
        file.extend_from_slice(&info.crc.to_le_bytes());
    }
    for info in &sections {
        file.extend_from_slice(&bytes[info.offset as usize..(info.offset + info.len) as usize]);
    }
    file.extend_from_slice(&delta);

    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, &file)?;
    std::fs::rename(&tmp, path)?;

    SnapshotMeta::read(path)
}

/// Folds a snapshot's delta chain into a fresh base: fully restores the
/// file (replaying every delta) and rewrites it as a delta-free v2
/// snapshot of the end state. Tombstoned set slots survive compaction —
/// the id space stays dense, so ids recorded elsewhere stay valid — but
/// the chain provenance (epochs, parent checksums) is consumed; read the
/// meta first if it needs to be archived. Returns the new meta.
pub fn compact(path: &Path) -> Result<SnapshotMeta, StoreError> {
    let state = read_snapshot(path)?;
    write_snapshot(
        path,
        &SnapshotView {
            repository: &state.repository,
            embeddings: state.embeddings.as_ref(),
            layout: state.meta.layout,
            indexes: state.indexes.iter().collect(),
            minhash: state.minhash.as_ref(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use koios_index::minhash::vocabulary_grams;

    fn sample() -> (Repository, Embeddings, InvertedIndex, MinHashIndex) {
        let mut b = RepositoryBuilder::new();
        b.add_set("cities", ["LA", "Blain", "Appleton", "MtPleasant"]);
        b.add_set("coast", ["LA", "Sacramento", "SC"]);
        b.add_set("dup", ["LA"]);
        let repo = b.build();
        let mut emb = Embeddings::new(4, repo.vocab_size());
        emb.set(TokenId(0), &[1.0, 2.0, 3.0, 4.0]);
        emb.set(TokenId(2), &[0.5, -0.5, 0.25, 0.0]);
        let index = InvertedIndex::build(&repo);
        let grams = vocabulary_grams(&repo, 3);
        let mh = MinHashIndex::build(&grams, MinHashParams::default());
        (repo, emb, index, mh)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("koios-store-unit");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn full_roundtrip_restores_everything() {
        let (repo, emb, index, mh) = sample();
        let path = tmp("full.ksnap");
        let meta = write_snapshot(
            &path,
            &SnapshotView {
                repository: &repo,
                embeddings: Some(&emb),
                layout: SnapshotLayout::Single,
                indexes: vec![&index],
                minhash: Some(&mh),
            },
        )
        .unwrap();
        assert_eq!(meta.layout, SnapshotLayout::Single);
        assert_eq!(meta.num_sets, 3);
        assert!(meta.has_embeddings && meta.has_minhash);

        let state = read_snapshot(&path).unwrap();
        assert_eq!(state.meta, meta);
        assert_eq!(state.repository.num_sets(), repo.num_sets());
        for (id, set) in repo.iter_sets() {
            assert_eq!(state.repository.set(id), set);
            assert_eq!(state.repository.set_name(id), repo.set_name(id));
        }
        let remb = state.embeddings.unwrap();
        assert_eq!(remb.raw_data(), emb.raw_data());
        assert_eq!(remb.present_mask(), emb.present_mask());
        assert_eq!(state.indexes.len(), 1);
        for t in 0..repo.vocab_size() as u32 {
            assert_eq!(
                state.indexes[0].postings(TokenId(t)),
                index.postings(TokenId(t))
            );
        }
        let rmh = state.minhash.unwrap();
        assert_eq!(rmh.signatures(), mh.signatures());
    }

    #[test]
    fn meta_read_skips_payloads() {
        let (repo, emb, index, _) = sample();
        let path = tmp("meta.ksnap");
        let written = write_snapshot(
            &path,
            &SnapshotView {
                repository: &repo,
                embeddings: Some(&emb),
                layout: SnapshotLayout::Single,
                indexes: vec![&index],
                minhash: None,
            },
        )
        .unwrap();
        let meta = SnapshotMeta::read(&path).unwrap();
        assert_eq!(meta, written);
        assert_eq!(meta.vocab_size, repo.vocab_size());
        assert!(!meta.has_minhash);
    }

    #[test]
    fn partitioned_layout_roundtrips_shard_order() {
        let (repo, _, _, _) = sample();
        let shard0 = InvertedIndex::build_subset(&repo, [SetId(0), SetId(2)]);
        let shard1 = InvertedIndex::build_subset(&repo, [SetId(1)]);
        let path = tmp("parted.ksnap");
        write_snapshot(
            &path,
            &SnapshotView {
                repository: &repo,
                embeddings: None,
                layout: SnapshotLayout::Partitioned {
                    partitions: 2,
                    seed: 7,
                },
                indexes: vec![&shard0, &shard1],
                minhash: None,
            },
        )
        .unwrap();
        let state = read_snapshot(&path).unwrap();
        assert_eq!(
            state.meta.layout,
            SnapshotLayout::Partitioned {
                partitions: 2,
                seed: 7
            }
        );
        assert_eq!(state.indexes.len(), 2);
        assert_eq!(state.indexes[0].total_postings(), shard0.total_postings());
        assert_eq!(state.indexes[1].total_postings(), shard1.total_postings());
    }

    #[test]
    fn wrong_index_count_is_rejected_at_write_time() {
        let (repo, _, index, _) = sample();
        let err = write_snapshot(
            &tmp("badcount.ksnap"),
            &SnapshotView {
                repository: &repo,
                embeddings: None,
                layout: SnapshotLayout::Partitioned {
                    partitions: 3,
                    seed: 0,
                },
                indexes: vec![&index],
                minhash: None,
            },
        )
        .unwrap_err();
        assert!(matches!(err, StoreError::Malformed(_)), "{err}");
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_snapshot(Path::new("/nonexistent/koios.ksnap")).unwrap_err();
        assert!(matches!(err, StoreError::Io(_)), "{err}");
        let err = SnapshotMeta::read(Path::new("/nonexistent/koios.ksnap")).unwrap_err();
        assert!(matches!(err, StoreError::Io(_)), "{err}");
    }

    #[test]
    fn error_display_is_informative() {
        let e = StoreError::LayoutMismatch {
            expected: "single",
            found: "partitioned(4)".to_string(),
        };
        assert!(e.to_string().contains("partitioned(4)"));
        let e = StoreError::ChecksumMismatch {
            kind: SectionKind::Repository,
        };
        assert!(e.to_string().contains("repository"));
        assert!(StoreError::BadMagic.to_string().contains("magic"));
        let e = StoreError::DeltaChainBroken {
            index: 2,
            expected: 0xAB,
            found: 0xCD,
        };
        let msg = e.to_string();
        assert!(
            msg.contains("delta 2") && msg.contains("0x000000ab") && msg.contains("0x000000cd")
        );
    }

    fn write_sample_base(path: &Path) -> (Repository, Embeddings) {
        let (repo, emb, index, mh) = sample();
        write_snapshot(
            path,
            &SnapshotView {
                repository: &repo,
                embeddings: Some(&emb),
                layout: SnapshotLayout::Single,
                indexes: vec![&index],
                minhash: Some(&mh),
            },
        )
        .unwrap();
        (repo, emb)
    }

    fn sample_ops() -> Vec<CorpusOp> {
        vec![
            CorpusOp::Insert {
                name: "valley".into(),
                tokens: vec!["Fresno".into(), "LA".into()],
                vectors: vec![("Fresno".into(), vec![0.1, 0.2, 0.3, 0.4])],
            },
            CorpusOp::remove(SetId(1)),
        ]
    }

    #[test]
    fn tombstones_roundtrip_through_the_base() {
        let (mut repo, emb, _, _) = sample();
        repo.remove_set(SetId(2));
        let index = InvertedIndex::build(&repo);
        let path = tmp("tombstoned-base.ksnap");
        write_snapshot(
            &path,
            &SnapshotView {
                repository: &repo,
                embeddings: Some(&emb),
                layout: SnapshotLayout::Single,
                indexes: vec![&index],
                minhash: None,
            },
        )
        .unwrap();
        let state = read_snapshot(&path).unwrap();
        assert_eq!(state.repository.num_sets(), 3);
        assert!(!state.repository.is_live(SetId(2)));
        assert!(state.repository.is_live(SetId(0)));
        // The tombstoned slot stays readable, exactly like the original.
        assert_eq!(state.repository.set(SetId(2)), repo.set(SetId(2)));
    }

    #[test]
    fn delta_replay_equals_in_memory_mutation() {
        let path = tmp("delta-replay.ksnap");
        let (mut repo, mut emb) = write_sample_base(&path);
        let ops = sample_ops();
        let meta = append_delta(&path, &ops, 1).unwrap();
        assert_eq!(meta.format_version, FORMAT_VERSION);
        assert_eq!(meta.deltas.len(), 1);
        assert_eq!(meta.deltas[0].epoch, 1);
        assert_eq!(meta.deltas[0].ops, 2);
        assert_eq!(meta.latest_epoch(), 1);

        // Reference: the same ops applied in memory to the same base.
        let mut index = InvertedIndex::build(&repo);
        for op in &ops {
            koios_index::live::apply_op(
                &mut repo,
                Some(&mut emb),
                &mut [&mut index],
                None,
                &|_| 0,
                op,
            )
            .unwrap();
        }

        let state = read_snapshot(&path).unwrap();
        assert_eq!(state.meta.deltas, meta.deltas);
        assert_eq!(state.repository.num_sets(), repo.num_sets());
        assert!(!state.repository.is_live(SetId(1)));
        let fresno = state.repository.token_id("Fresno").unwrap();
        let remb = state.embeddings.unwrap();
        assert_eq!(remb.raw_data(), emb.raw_data());
        assert_eq!(remb.present_mask(), emb.present_mask());
        assert!(remb.has(fresno));
        for t in 0..repo.vocab_size() as u32 {
            assert_eq!(
                state.indexes[0].postings(TokenId(t)),
                index.postings(TokenId(t))
            );
        }
        // MinHash grew to the new vocabulary.
        assert_eq!(state.minhash.unwrap().signatures().len(), repo.vocab_size());
    }

    #[test]
    fn delta_chain_links_by_checksum() {
        let path = tmp("delta-chain.ksnap");
        write_sample_base(&path);
        append_delta(&path, &[CorpusOp::insert("x", ["LA"])], 1).unwrap();
        let meta = append_delta(&path, &[CorpusOp::insert("y", ["SC"])], 2).unwrap();
        assert_eq!(meta.deltas.len(), 2);
        assert_eq!(meta.deltas[1].parent_crc, meta.deltas[0].crc);
        assert_eq!(meta.latest_epoch(), 2);
        // Cheap inspection agrees with the full read.
        let state = read_snapshot(&path).unwrap();
        assert_eq!(state.meta.deltas, meta.deltas);
        assert_eq!(state.repository.num_sets(), 5);
    }

    #[test]
    fn bit_flips_in_delta_sections_are_typed_errors() {
        let path = tmp("delta-flip.ksnap");
        write_sample_base(&path);
        append_delta(&path, &sample_ops(), 1).unwrap();
        let good = std::fs::read(&path).unwrap();
        let meta = SnapshotMeta::read(&path).unwrap();
        let info = *meta
            .sections
            .iter()
            .find(|s| s.kind == SectionKind::Delta)
            .unwrap();
        // Flip one bit at every byte of the delta payload: each read must
        // fail with a typed error (checksum or chain), never panic.
        for at in info.offset..info.offset + info.len {
            let mut bad = good.clone();
            bad[at as usize] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            let err = read_snapshot(&path).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::ChecksumMismatch {
                        kind: SectionKind::Delta
                    } | StoreError::DeltaChainBroken { .. }
                ),
                "offset {at}: {err}"
            );
            // Appending to a corrupt file must refuse, not compound.
            assert!(append_delta(&path, &[CorpusOp::insert("z", ["LA"])], 9).is_err());
        }
        std::fs::write(&path, &good).unwrap();
        assert!(read_snapshot(&path).is_ok());
    }

    #[test]
    fn rewriting_the_base_breaks_the_chain() {
        let path = tmp("delta-rebase.ksnap");
        let (repo, emb) = write_sample_base(&path);
        append_delta(&path, &sample_ops(), 1).unwrap();
        let with_delta = std::fs::read(&path).unwrap();

        // Write a *different* base (no embeddings), then graft the old
        // delta section onto it by re-appending its bytes: parent checksum
        // no longer matches the folded base checksums.
        let index = InvertedIndex::build(&repo);
        write_snapshot(
            &path,
            &SnapshotView {
                repository: &repo,
                embeddings: Some(&emb),
                layout: SnapshotLayout::Single,
                indexes: vec![&index],
                minhash: None, // dropped section: base checksum fold changes
            },
        )
        .unwrap();
        let meta = SnapshotMeta::read(&path).unwrap();
        let delta_info = {
            let m = {
                std::fs::write(tmp("delta-rebase-probe.ksnap"), &with_delta).unwrap();
                SnapshotMeta::read(&tmp("delta-rebase-probe.ksnap")).unwrap()
            };
            *m.sections
                .iter()
                .find(|s| s.kind == SectionKind::Delta)
                .unwrap()
        };
        let delta_bytes =
            &with_delta[delta_info.offset as usize..(delta_info.offset + delta_info.len) as usize];

        // Hand-assemble base + stale delta.
        let base = std::fs::read(&path).unwrap();
        let count = meta.sections.len() + 1;
        let mut file = Vec::new();
        file.extend_from_slice(&MAGIC);
        file.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        file.extend_from_slice(&(count as u32).to_le_bytes());
        let shift = TABLE_ENTRY_LEN as u64;
        let mut tail_offset = 0;
        for info in &meta.sections {
            file.extend_from_slice(&info.kind.to_u32().to_le_bytes());
            file.extend_from_slice(&(info.offset + shift).to_le_bytes());
            file.extend_from_slice(&info.len.to_le_bytes());
            file.extend_from_slice(&info.crc.to_le_bytes());
            tail_offset = tail_offset.max(info.offset + shift + info.len);
        }
        file.extend_from_slice(&SectionKind::Delta.to_u32().to_le_bytes());
        file.extend_from_slice(&tail_offset.to_le_bytes());
        file.extend_from_slice(&(delta_bytes.len() as u64).to_le_bytes());
        file.extend_from_slice(&crc32(delta_bytes).to_le_bytes());
        file.extend_from_slice(&base[HEADER_LEN + meta.sections.len() * TABLE_ENTRY_LEN..]);
        file.extend_from_slice(delta_bytes);
        std::fs::write(&path, &file).unwrap();

        let err = read_snapshot(&path).unwrap_err();
        assert!(
            matches!(err, StoreError::DeltaChainBroken { index: 0, .. }),
            "{err}"
        );
        let err = SnapshotMeta::read(&path).unwrap_err();
        assert!(
            matches!(err, StoreError::DeltaChainBroken { index: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn compact_folds_the_chain_into_a_fresh_base() {
        let path = tmp("delta-compact.ksnap");
        write_sample_base(&path);
        append_delta(&path, &sample_ops(), 1).unwrap();
        append_delta(&path, &[CorpusOp::insert("y", ["SC", "Yuma"])], 2).unwrap();
        let before = read_snapshot(&path).unwrap();

        let meta = compact(&path).unwrap();
        assert!(meta.deltas.is_empty());
        assert_eq!(meta.num_sets, before.repository.num_sets());

        let after = read_snapshot(&path).unwrap();
        assert_eq!(after.repository.num_sets(), before.repository.num_sets());
        assert_eq!(
            after.repository.tombstones().collect::<Vec<_>>(),
            before.repository.tombstones().collect::<Vec<_>>()
        );
        let aemb = after.embeddings.unwrap();
        let bemb = before.embeddings.unwrap();
        assert_eq!(aemb.raw_data(), bemb.raw_data());
        assert_eq!(aemb.present_mask(), bemb.present_mask());
        for t in 0..after.repository.vocab_size() as u32 {
            assert_eq!(
                after.indexes[0].postings(TokenId(t)),
                before.indexes[0].postings(TokenId(t))
            );
        }
        // Further deltas chain onto the compacted base.
        let meta = append_delta(&path, &[CorpusOp::remove(SetId(0))], 3).unwrap();
        assert_eq!(meta.deltas.len(), 1);
        assert!(!read_snapshot(&path).unwrap().repository.is_live(SetId(0)));
    }

    #[test]
    fn v1_headers_are_still_accepted() {
        let path = tmp("v1-compat.ksnap");
        write_sample_base(&path);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let meta = SnapshotMeta::read(&path).unwrap();
        assert_eq!(meta.format_version, 1);
        assert!(read_snapshot(&path).is_ok());
        // Appending upgrades the header to the current version.
        let meta = append_delta(&path, &[CorpusOp::insert("x", ["LA"])], 1).unwrap();
        assert_eq!(meta.format_version, FORMAT_VERSION);
    }

    #[test]
    fn delta_replay_of_a_bad_op_is_a_typed_error() {
        let path = tmp("delta-badop.ksnap");
        write_sample_base(&path);
        // Removing a set that does not exist decodes fine but cannot replay.
        append_delta(&path, &[CorpusOp::remove(SetId(77))], 1).unwrap();
        let err = read_snapshot(&path).unwrap_err();
        assert!(matches!(err, StoreError::Malformed(_)), "{err}");
        assert!(err.to_string().contains("replay"));
    }
}
