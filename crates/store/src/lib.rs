//! Versioned binary snapshots of query-ready Koios state.
//!
//! Every layer above this crate assumes the repository, token vectors and
//! indexes already exist in memory; before `koios-store`, a process restart
//! threw all of them away and rebuilt from scratch. This crate makes that
//! state durable: save a query-ready engine once
//! ([`snapshot::write_snapshot`]), restart, and warm-start in a fraction of
//! the build time ([`snapshot::read_snapshot`]) — with byte-identical
//! search results, because vectors and indexes are restored bit-exactly
//! rather than recomputed.
//!
//! The format is a hand-rolled little-endian container in the same
//! dependency-free spirit as `koios-common::json`: an 8-byte magic, a
//! format version, a section table, and one CRC-32 per section
//! (`Meta` / `Repository` / `Embeddings` / `InvertedIndex` × shards /
//! `MinHash` — see [`snapshot`] for the byte layout). Corruption of any
//! kind — truncation, flipped bits, an alien file, a newer format — fails
//! with a typed [`StoreError`], never a panic.
//!
//! Two layers:
//!
//! * [`codec`] — primitive little-endian writers and bounds-checked
//!   readers: fixed-width ints/floats, varints, length-prefixed strings,
//!   delta-encoded sorted id sequences, and the CRC-32.
//! * [`snapshot`] — the section container: [`write_snapshot`]
//!   (temp-file + rename), [`read_snapshot`] (verify-then-decode, replaying
//!   any appended delta sections), [`SnapshotMeta::read`] for cheap
//!   inspection without loading payloads, plus the live-corpus surface:
//!   [`append_delta`] chains a batch of corpus ops onto an existing
//!   snapshot by checksum, and [`compact`] folds the chain back into a
//!   fresh base.
//!
//! Entry points for applications live one level up:
//! `EngineBackend::{write_snapshot, from_snapshot}` in `koios-core`
//! restores a ready-to-serve engine (single or sharded) in one call, and
//! `SearchService::from_snapshot` in `koios-service` warm-starts a whole
//! serving stack.
//!
//! [`write_snapshot`]: snapshot::write_snapshot
//! [`read_snapshot`]: snapshot::read_snapshot
//! [`SnapshotMeta::read`]: snapshot::SnapshotMeta::read
//! [`append_delta`]: snapshot::append_delta
//! [`compact`]: snapshot::compact

pub mod codec;
pub mod snapshot;

pub use codec::{crc32, CodecError, Reader, Writer};
pub use snapshot::{
    append_delta, compact, read_snapshot, write_snapshot, DeltaInfo, SectionInfo, SectionKind,
    SnapshotLayout, SnapshotMeta, SnapshotState, SnapshotView, StoreError, FORMAT_VERSION,
    SNAPSHOT_EXT,
};
