//! Request-scoped tracing: span trees, tail-based sampling, ring retention.
//!
//! PR 6's histograms answer *"how slow is the p99?"*; this module answers
//! *"which stage of which query was the p99?"*. Each request assembles one
//! **span tree** — queue wait, cache probes, executor batch, per-shard
//! search, refine/verify/merge, serialize — in a thread-local
//! [`TraceBuilder`] owned by the worker that runs the request, so the hot
//! path takes **no locks and performs one bounded allocation** (the span
//! `Vec`, capped at [`MAX_SPANS`]). Only when the request completes is the
//! finished tree offered to the shared [`TraceSink`], and only traces the
//! sampling policy retains ever touch the sink's ring-buffer mutex.
//!
//! **Tail-based sampling** ([`SamplingPolicy`]): the keep/drop decision is
//! made *after* the request finishes, when its fate is known. Every trace
//! that timed out, was rejected, crossed the slow-log threshold, or lands
//! in the top-p% by duration is retained; the ordinary rest are sampled
//! with a deterministic per-trace-id coin (seeded splitmix, no RNG state),
//! so two runs over the same trace ids retain the same set. The ring
//! buffer evicts unprivileged (probability-sampled) traces first, so the
//! interesting tail survives bursts of healthy traffic.
//!
//! Trace and span ids are minted from the PR 1 fingerprint machinery
//! ([`koios_common::fingerprint`]); trace context crosses process
//! boundaries in a W3C `traceparent`-style header ([`TraceContext`]), so a
//! remote client's id shows up in the server's tree.

use koios_common::fingerprint::{hex, mix64, Fingerprinter};
use koios_common::json::Json;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::Histogram;

/// Hard cap on spans retained per trace (bounded allocation). A 64-shard
/// partitioned query plus every stage span fits comfortably; anything past
/// the cap increments [`Trace::dropped_spans`] instead of growing the tree.
pub const MAX_SPANS: usize = 96;

/// Mints a non-zero 64-bit id from two words via the fingerprint mixer.
/// Zero is reserved as "no id" in wire formats, so it is remapped.
pub fn mint_id(a: u64, b: u64) -> u64 {
    let mut fp = Fingerprinter::new();
    fp.write_u64(a);
    fp.write_u64(b);
    let id = fp.finish();
    if id == 0 {
        1
    } else {
        id
    }
}

/// Propagated trace context: the tuple a `traceparent`-style header
/// carries across the wire. `parent_span` is the caller's span id — the
/// server's root span links to it so cross-process trees stitch together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace id (non-zero).
    pub trace_id: u64,
    /// Caller's span id (zero when the caller has no span of its own).
    pub parent_span: u64,
    /// W3C "sampled" flag: the caller asks for this trace to be retained
    /// regardless of the tail-sampling coin.
    pub sampled: bool,
}

impl TraceContext {
    /// A fresh root context around `trace_id`, flagged sampled: the caller
    /// minting an explicit id wants to look the trace up afterwards.
    pub fn new(trace_id: u64) -> Self {
        TraceContext {
            trace_id,
            parent_span: mint_id(trace_id, u64::MAX),
            sampled: true,
        }
    }

    /// Renders the W3C `traceparent` header value
    /// (`00-<32 hex trace>-<16 hex span>-<2 hex flags>`). Koios ids are 64
    /// bits, so the trace-id field is zero-extended to 128.
    pub fn render_traceparent(&self) -> String {
        let flags = if self.sampled { 1 } else { 0 };
        format!(
            "00-{:032x}-{:016x}-{:02x}",
            self.trace_id, self.parent_span, flags
        )
    }

    /// Parses a `traceparent` header value. The 128-bit trace-id field is
    /// folded to 64 bits (high ^ low), which is the identity for headers
    /// this stack rendered itself. Returns `None` for malformed input or
    /// an all-zero trace id (invalid per the W3C spec).
    pub fn parse_traceparent(value: &str) -> Option<TraceContext> {
        let mut parts = value.trim().split('-');
        let version = parts.next()?;
        let trace = parts.next()?;
        let span = parts.next()?;
        let flags = parts.next()?;
        if version.len() != 2 || trace.len() != 32 || span.len() != 16 || flags.len() != 2 {
            return None;
        }
        let hi = u64::from_str_radix(&trace[..16], 16).ok()?;
        let lo = u64::from_str_radix(&trace[16..], 16).ok()?;
        let trace_id = hi ^ lo;
        if trace_id == 0 {
            return None;
        }
        let parent_span = u64::from_str_radix(span, 16).ok()?;
        let flags = u8::from_str_radix(flags, 16).ok()?;
        Some(TraceContext {
            trace_id,
            parent_span,
            sampled: flags & 1 == 1,
        })
    }
}

/// One recorded span: a node of a request's tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id (non-zero, unique within the trace).
    pub id: u64,
    /// Parent span id; for the root span this is the *remote* caller's
    /// span id (or zero when the trace originated in this process).
    pub parent: u64,
    /// Stage name (`"queue"`, `"shard"`, `"refine"`, …).
    pub name: &'static str,
    /// Shard index for per-shard search spans.
    pub shard: Option<u32>,
    /// Cache outcome tag (`"hit"`, `"miss"`, …) for cache-probe spans.
    pub cache: Option<&'static str>,
    /// Corpus epoch observed by this span (0 = not stamped).
    pub epoch: u64,
    /// Monotonic start offset from the trace's start, in nanoseconds.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub duration_ns: u64,
}

/// Why the sink retained a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetainReason {
    /// Caller set the `sampled` flag (explicit trace context) or the span
    /// source force-retains (mutation traces).
    Forced,
    /// The request's deadline expired.
    TimedOut,
    /// Admission control or validation rejected the request.
    Rejected,
    /// Total duration crossed the slow-log threshold.
    Slow,
    /// Landed in the top-p% of completed-trace durations.
    TopPercent,
    /// Won the deterministic probability coin.
    Sampled,
}

impl RetainReason {
    /// Stable lower-case label for wire formats.
    pub fn as_str(self) -> &'static str {
        match self {
            RetainReason::Forced => "forced",
            RetainReason::TimedOut => "timeout",
            RetainReason::Rejected => "rejected",
            RetainReason::Slow => "slow",
            RetainReason::TopPercent => "top_p",
            RetainReason::Sampled => "sampled",
        }
    }

    /// Privileged traces are never evicted ahead of probability-sampled
    /// ones when the ring wraps.
    fn privileged(self) -> bool {
        !matches!(self, RetainReason::Sampled)
    }
}

/// A finished, retained trace.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Trace id (non-zero).
    pub trace_id: u64,
    /// Root span id (`spans[0].id`).
    pub root: u64,
    /// Spans in recording order; `spans[0]` is the root.
    pub spans: Vec<SpanRecord>,
    /// Spans discarded past [`MAX_SPANS`].
    pub dropped_spans: u64,
    /// End-to-end duration.
    pub duration_ns: u64,
    /// The request's deadline expired.
    pub timed_out: bool,
    /// The request was rejected (admission control / validation).
    pub rejected: bool,
    /// Crossed the slow-log threshold.
    pub slow: bool,
    /// Caller requested retention (explicit context / mutation trace).
    pub forced: bool,
    /// Why the sink kept this trace.
    pub reason: RetainReason,
    /// Completion sequence number (sink-assigned, monotone).
    pub seq: u64,
    /// When the trace started (in-process only; not serialized).
    pub started: Instant,
    /// EXPLAIN funnel summary (`stage=count …`), when the request ran with
    /// funnel accounting — a retained slow trace then answers "where did
    /// the candidates go" on its own.
    pub funnel: Option<String>,
}

impl Trace {
    /// Maximum parent-chain depth of the tree (root = 1). Walks at most
    /// `spans.len()` links per span, so malformed input cannot loop.
    pub fn depth(&self) -> usize {
        let mut max = 0usize;
        for span in &self.spans {
            let mut d = 1usize;
            let mut parent = span.parent;
            let mut hops = 0usize;
            while parent != 0 && hops < self.spans.len() {
                match self.spans.iter().find(|s| s.id == parent) {
                    Some(p) => {
                        d += 1;
                        parent = p.parent;
                    }
                    None => break, // remote parent (root links off-process)
                }
                hops += 1;
            }
            max = max.max(d);
        }
        max
    }

    /// Every span's parent resolves within the trace (the root may link to
    /// a remote parent) and parent chains terminate (no cycles).
    pub fn well_formed(&self) -> bool {
        if self.spans.is_empty() || self.spans[0].id != self.root {
            return false;
        }
        for (i, span) in self.spans.iter().enumerate() {
            if span.id == 0 {
                return false;
            }
            if i == 0 {
                continue; // root's parent is the remote caller (or zero)
            }
            // Non-root parents must exist in-trace…
            if !self.spans.iter().any(|s| s.id == span.parent) {
                return false;
            }
            // …and chains must reach the root without cycling.
            let mut parent = span.parent;
            let mut hops = 0usize;
            while parent != 0 {
                if hops > self.spans.len() {
                    return false; // cycle
                }
                if parent == self.root {
                    break;
                }
                match self.spans.iter().find(|s| s.id == parent) {
                    Some(p) => parent = p.parent,
                    None => return false,
                }
                hops += 1;
            }
        }
        true
    }
}

/// Per-request span-tree builder. Owned by exactly one worker thread while
/// the request runs: recording a span is a bounds-checked `Vec::push`, no
/// atomics, no locks. Span ids are minted deterministically from the trace
/// id and a per-trace sequence via [`mint_id`].
#[derive(Debug)]
pub struct TraceBuilder {
    trace_id: u64,
    root: u64,
    forced: bool,
    started: Instant,
    spans: Vec<SpanRecord>,
    next_seq: u64,
    dropped: u64,
    funnel: Option<String>,
}

impl TraceBuilder {
    /// Starts a trace. `ctx` carries a remote caller's id and sampled flag;
    /// without one, `trace_id` must be a freshly minted non-zero id.
    pub fn new(trace_id: u64, remote_parent: u64, forced: bool, started: Instant) -> Self {
        let mut tb = TraceBuilder {
            trace_id,
            root: 0,
            forced,
            started,
            spans: Vec::with_capacity(16),
            next_seq: 0,
            dropped: 0,
            funnel: None,
        };
        let root = tb.mint_span();
        tb.root = root;
        tb.spans.push(SpanRecord {
            id: root,
            parent: remote_parent,
            name: "request",
            shard: None,
            cache: None,
            epoch: 0,
            start_ns: 0,
            duration_ns: 0,
        });
        tb
    }

    fn mint_span(&mut self) -> u64 {
        self.next_seq += 1;
        mint_id(self.trace_id, mix64(self.next_seq))
    }

    /// The trace id.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The root span's id (parent for top-level stage spans).
    pub fn root(&self) -> u64 {
        self.root
    }

    /// When the trace started.
    pub fn started(&self) -> Instant {
        self.started
    }

    /// Nanosecond offset of `at` from the trace start (0 if earlier).
    pub fn offset(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.started).as_nanos() as u64
    }

    /// Records a plain stage span; returns its id (0 if the cap dropped it).
    pub fn add(&mut self, name: &'static str, parent: u64, start_ns: u64, duration_ns: u64) -> u64 {
        self.add_detail(name, parent, start_ns, duration_ns, None, None, 0)
    }

    /// Records a span with shard / cache-outcome / epoch annotations.
    #[allow(clippy::too_many_arguments)]
    pub fn add_detail(
        &mut self,
        name: &'static str,
        parent: u64,
        start_ns: u64,
        duration_ns: u64,
        shard: Option<u32>,
        cache: Option<&'static str>,
        epoch: u64,
    ) -> u64 {
        if self.spans.len() >= MAX_SPANS {
            self.dropped += 1;
            return 0;
        }
        let id = self.mint_span();
        self.spans.push(SpanRecord {
            id,
            parent,
            name,
            shard,
            cache,
            epoch,
            start_ns,
            duration_ns,
        });
        id
    }

    /// Stamps the corpus epoch on the root span.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.spans[0].epoch = epoch;
    }

    /// Attaches the EXPLAIN funnel summary to the trace.
    pub fn set_funnel(&mut self, summary: String) {
        self.funnel = Some(summary);
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when only the root span exists.
    pub fn is_empty(&self) -> bool {
        self.spans.len() <= 1
    }

    /// Maximum parent-chain depth of the tree built so far (root = 1).
    pub fn depth(&self) -> usize {
        self.as_trace_view().depth()
    }

    fn as_trace_view(&self) -> Trace {
        Trace {
            trace_id: self.trace_id,
            root: self.root,
            spans: self.spans.clone(),
            dropped_spans: self.dropped,
            duration_ns: 0,
            timed_out: false,
            rejected: false,
            slow: false,
            forced: self.forced,
            reason: RetainReason::Sampled,
            seq: 0,
            started: self.started,
            funnel: self.funnel.clone(),
        }
    }

    /// Seals the tree into a [`Trace`] carrying its outcome flags. The
    /// root span's duration becomes `duration`.
    pub fn finish(mut self, duration: Duration, timed_out: bool, rejected: bool) -> Trace {
        let duration_ns = duration.as_nanos() as u64;
        self.spans[0].duration_ns = duration_ns;
        Trace {
            trace_id: self.trace_id,
            root: self.root,
            spans: self.spans,
            dropped_spans: self.dropped,
            duration_ns,
            timed_out,
            rejected,
            slow: false, // stamped by the sink against its threshold
            forced: self.forced,
            reason: RetainReason::Sampled,
            seq: 0,
            started: self.started,
            funnel: self.funnel,
        }
    }
}

/// Tail-based sampling policy: which finished traces the sink retains.
#[derive(Debug, Clone)]
pub struct SamplingPolicy {
    /// Probability of keeping an ordinary (non-privileged) trace. The coin
    /// is a deterministic hash of `seed ^ trace_id` — no RNG state, same
    /// decisions on every run over the same ids.
    pub probability: f64,
    /// Retain traces in the top-p% of completed-trace durations (estimated
    /// from a log2 histogram of everything offered so far).
    pub top_percent: f64,
    /// Seed for the sampling coin.
    pub seed: u64,
    /// Retain everything at or over this duration (the slow-log
    /// threshold), independent of the coin.
    pub slow_threshold: Option<Duration>,
}

impl Default for SamplingPolicy {
    fn default() -> Self {
        SamplingPolicy {
            probability: 0.05,
            top_percent: 5.0,
            seed: 0x5EED_0F0C_1005,
            slow_threshold: None,
        }
    }
}

impl SamplingPolicy {
    /// Deterministic per-trace coin: true with ~`probability`.
    pub fn coin(&self, trace_id: u64) -> bool {
        let h = mix64(self.seed ^ trace_id);
        // 53 high-quality bits → uniform in [0, 1).
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.probability
    }
}

/// Tracing configuration carried by the service config.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Ring-buffer capacity (retained traces).
    pub capacity: usize,
    /// Tail-sampling policy.
    pub policy: SamplingPolicy,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: 256,
            policy: SamplingPolicy::default(),
        }
    }
}

/// Counters describing a sink's lifetime behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSinkStats {
    /// Traces offered (completed requests).
    pub completed: u64,
    /// Traces retained by any rule.
    pub retained: u64,
    /// Retained via the probability coin only.
    pub sampled: u64,
    /// Ring capacity.
    pub capacity: usize,
    /// Traces currently stored.
    pub stored: usize,
}

/// Fixed-size ring buffer of retained traces with tail-based sampling.
///
/// `offer` is the only completion-path entry point: counters and the
/// duration histogram are lock-free; the ring mutex is taken only for
/// traces that pass the retention rules (a dropped trace never locks).
#[derive(Debug)]
pub struct TraceSink {
    capacity: usize,
    policy: SamplingPolicy,
    durations: Histogram,
    completed: AtomicU64,
    retained: AtomicU64,
    sampled: AtomicU64,
    seq: AtomicU64,
    ring: Mutex<VecDeque<Trace>>,
}

impl TraceSink {
    /// An empty sink retaining at most `capacity` traces.
    pub fn new(capacity: usize, policy: SamplingPolicy) -> Self {
        TraceSink {
            capacity: capacity.max(1),
            policy,
            durations: Histogram::new(),
            completed: AtomicU64::new(0),
            retained: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// The sampling policy.
    pub fn policy(&self) -> &SamplingPolicy {
        &self.policy
    }

    /// Decides a finished trace's fate. Returns the retention reason, or
    /// `None` when the trace was dropped.
    pub fn offer(&self, mut trace: Trace) -> Option<RetainReason> {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.durations.record(trace.duration_ns);
        if let Some(t) = self.policy.slow_threshold {
            trace.slow = trace.duration_ns >= t.as_nanos() as u64;
        }
        let reason = if trace.forced {
            RetainReason::Forced
        } else if trace.timed_out {
            RetainReason::TimedOut
        } else if trace.rejected {
            RetainReason::Rejected
        } else if trace.slow {
            RetainReason::Slow
        } else if self.in_top_percent(trace.duration_ns) {
            RetainReason::TopPercent
        } else if self.policy.coin(trace.trace_id) {
            self.sampled.fetch_add(1, Ordering::Relaxed);
            RetainReason::Sampled
        } else {
            return None;
        };
        trace.reason = reason;
        trace.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.retained.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().unwrap();
        if ring.len() >= self.capacity {
            // Evict the oldest probability-sampled trace first; privileged
            // traces (timeout/rejected/slow/forced/top-p) only make room
            // for each other, oldest first.
            match ring.iter().position(|t| !t.reason.privileged()) {
                Some(i) => {
                    ring.remove(i);
                }
                None => {
                    ring.pop_front();
                }
            }
        }
        ring.push_back(trace);
        Some(reason)
    }

    fn in_top_percent(&self, duration_ns: u64) -> bool {
        if self.policy.top_percent <= 0.0 {
            return false;
        }
        let snap = self.durations.snapshot();
        if snap.count() < 20 {
            // Too few observations to call anything "the top p%".
            return false;
        }
        let q = 1.0 - (self.policy.top_percent / 100.0).clamp(0.0, 1.0);
        duration_ns as f64 >= snap.quantile_ns(q)
    }

    /// Looks up a retained trace by id (newest match wins).
    pub fn get(&self, trace_id: u64) -> Option<Trace> {
        let ring = self.ring.lock().unwrap();
        ring.iter().rev().find(|t| t.trace_id == trace_id).cloned()
    }

    /// All retained traces, newest first.
    pub fn list(&self) -> Vec<Trace> {
        let ring = self.ring.lock().unwrap();
        ring.iter().rev().cloned().collect()
    }

    /// The slowest retained trace.
    pub fn slowest(&self) -> Option<Trace> {
        let ring = self.ring.lock().unwrap();
        ring.iter().max_by_key(|t| t.duration_ns).cloned()
    }

    /// Appends a late span (e.g. response serialization, measured after
    /// the worker sealed the tree) to a retained trace. The span becomes a
    /// child of the root; the trace's duration extends to cover it. No-op
    /// when the trace was not retained.
    pub fn append_span(
        &self,
        trace_id: u64,
        name: &'static str,
        start: Instant,
        duration: Duration,
    ) -> bool {
        let mut ring = self.ring.lock().unwrap();
        let Some(trace) = ring.iter_mut().rev().find(|t| t.trace_id == trace_id) else {
            return false;
        };
        if trace.spans.len() >= MAX_SPANS {
            trace.dropped_spans += 1;
            return false;
        }
        let start_ns = start.saturating_duration_since(trace.started).as_nanos() as u64;
        let duration_ns = duration.as_nanos() as u64;
        let seq = trace.spans.len() as u64 + trace.dropped_spans + 1;
        trace.spans.push(SpanRecord {
            id: mint_id(trace_id, mix64(seq)),
            parent: trace.root,
            name,
            shard: None,
            cache: None,
            epoch: 0,
            start_ns,
            duration_ns,
        });
        trace.duration_ns = trace.duration_ns.max(start_ns + duration_ns);
        true
    }

    /// Lifetime counters.
    pub fn stats(&self) -> TraceSinkStats {
        TraceSinkStats {
            completed: self.completed.load(Ordering::Relaxed),
            retained: self.retained.load(Ordering::Relaxed),
            sampled: self.sampled.load(Ordering::Relaxed),
            capacity: self.capacity,
            stored: self.ring.lock().unwrap().len(),
        }
    }
}

/// Serializes one span for the `GET /traces` wire format.
pub fn span_to_json(span: &SpanRecord) -> Json {
    let mut fields = vec![
        ("id", Json::str(hex(span.id))),
        (
            "parent",
            if span.parent == 0 {
                Json::Null
            } else {
                Json::str(hex(span.parent))
            },
        ),
        ("name", Json::str(span.name)),
    ];
    if let Some(shard) = span.shard {
        fields.push(("shard", Json::num(shard as f64)));
    }
    if let Some(cache) = span.cache {
        fields.push(("cache", Json::str(cache)));
    }
    if span.epoch != 0 {
        fields.push(("epoch", Json::num(span.epoch as f64)));
    }
    fields.push(("start_ns", Json::num(span.start_ns as f64)));
    fields.push(("duration_ns", Json::num(span.duration_ns as f64)));
    Json::obj(fields)
}

/// Serializes a full trace (span tree + outcome flags) for `GET /traces`.
pub fn trace_to_json(trace: &Trace) -> Json {
    let mut fields = vec![
        ("trace_id", Json::str(hex(trace.trace_id))),
        ("root", Json::str(hex(trace.root))),
        ("duration_ns", Json::num(trace.duration_ns as f64)),
        ("depth", Json::num(trace.depth() as f64)),
        ("timed_out", Json::Bool(trace.timed_out)),
        ("rejected", Json::Bool(trace.rejected)),
        ("slow", Json::Bool(trace.slow)),
        ("reason", Json::str(trace.reason.as_str())),
        ("dropped_spans", Json::num(trace.dropped_spans as f64)),
    ];
    if let Some(f) = &trace.funnel {
        fields.push(("funnel", Json::str(f.clone())));
    }
    fields.push((
        "spans",
        Json::arr(trace.spans.iter().map(span_to_json).collect::<Vec<_>>()),
    ));
    Json::obj(fields)
}

/// Serializes a one-line summary (no spans) for the `GET /traces` list.
pub fn trace_summary_json(trace: &Trace) -> Json {
    Json::obj([
        ("trace_id", Json::str(hex(trace.trace_id))),
        ("duration_ns", Json::num(trace.duration_ns as f64)),
        ("spans", Json::num(trace.spans.len() as f64)),
        ("depth", Json::num(trace.depth() as f64)),
        ("timed_out", Json::Bool(trace.timed_out)),
        ("rejected", Json::Bool(trace.rejected)),
        ("slow", Json::Bool(trace.slow)),
        ("reason", Json::str(trace.reason.as_str())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(trace_id: u64, duration_ms: u64) -> Trace {
        let mut tb = TraceBuilder::new(trace_id, 0, false, Instant::now());
        let root = tb.root();
        tb.add("queue", root, 0, 1_000);
        tb.finish(Duration::from_millis(duration_ms), false, false)
    }

    #[test]
    fn traceparent_round_trips() {
        let ctx = TraceContext::new(0xDEAD_BEEF_1234_5678);
        let header = ctx.render_traceparent();
        assert_eq!(header.len(), 55);
        let parsed = TraceContext::parse_traceparent(&header).unwrap();
        assert_eq!(parsed, ctx);
    }

    #[test]
    fn traceparent_rejects_malformed() {
        assert!(TraceContext::parse_traceparent("").is_none());
        assert!(TraceContext::parse_traceparent("00-zz-ff-01").is_none());
        // All-zero trace id is invalid.
        let zero = format!("00-{:032x}-{:016x}-01", 0, 7);
        assert!(TraceContext::parse_traceparent(&zero).is_none());
    }

    #[test]
    fn builder_caps_spans() {
        let mut tb = TraceBuilder::new(42, 0, false, Instant::now());
        let root = tb.root();
        for _ in 0..(MAX_SPANS * 2) {
            tb.add("stage", root, 0, 1);
        }
        assert_eq!(tb.len(), MAX_SPANS);
        let t = tb.finish(Duration::from_millis(1), false, false);
        assert_eq!(t.spans.len(), MAX_SPANS);
        assert!(t.dropped_spans > 0);
        assert!(t.well_formed());
    }

    #[test]
    fn sampling_is_deterministic_under_a_seed() {
        let policy = SamplingPolicy {
            probability: 0.25,
            top_percent: 0.0,
            seed: 99,
            slow_threshold: None,
        };
        let a = TraceSink::new(1024, policy.clone());
        let b = TraceSink::new(1024, policy);
        let mut kept_a = Vec::new();
        let mut kept_b = Vec::new();
        for id in 1..=400u64 {
            let t = build(mint_id(id, 7), 1);
            let tid = t.trace_id;
            if a.offer(t.clone()).is_some() {
                kept_a.push(tid);
            }
            if b.offer(t).is_some() {
                kept_b.push(tid);
            }
        }
        assert_eq!(kept_a, kept_b);
        // ~25% of 400, with generous slack for the hash's variance.
        assert!(kept_a.len() > 40 && kept_a.len() < 200, "{}", kept_a.len());
        // A different seed flips some decisions.
        let other = TraceSink::new(
            1024,
            SamplingPolicy {
                probability: 0.25,
                top_percent: 0.0,
                seed: 100,
                slow_threshold: None,
            },
        );
        let mut kept_other = Vec::new();
        for id in 1..=400u64 {
            let t = build(mint_id(id, 7), 1);
            let tid = t.trace_id;
            if other.offer(t).is_some() {
                kept_other.push(tid);
            }
        }
        assert_ne!(kept_a, kept_other);
    }

    #[test]
    fn ring_eviction_keeps_timed_out_traces() {
        let sink = TraceSink::new(
            8,
            SamplingPolicy {
                probability: 1.0, // retain everything, force wraparound
                top_percent: 0.0,
                seed: 1,
                slow_threshold: None,
            },
        );
        let mut timed_out_ids = Vec::new();
        for i in 1..=40u64 {
            let mut t = build(mint_id(i, 3), 1);
            if i % 10 == 0 {
                t.timed_out = true;
                timed_out_ids.push(t.trace_id);
            }
            assert!(sink.offer(t).is_some());
        }
        // 4 timed-out traces among 40 offered into capacity 8: every one
        // must survive; sampled traces absorb all the eviction.
        for id in &timed_out_ids {
            let got = sink.get(*id).expect("timed-out trace evicted");
            assert!(got.timed_out);
            assert_eq!(got.reason, RetainReason::TimedOut);
        }
        assert_eq!(sink.stats().stored, 8);
    }

    #[test]
    fn slow_threshold_and_forced_retention() {
        let sink = TraceSink::new(
            16,
            SamplingPolicy {
                probability: 0.0,
                top_percent: 0.0,
                seed: 5,
                slow_threshold: Some(Duration::from_millis(50)),
            },
        );
        // Fast, unforced: dropped.
        assert!(sink.offer(build(11, 1)).is_none());
        // Slow: kept.
        assert_eq!(sink.offer(build(12, 60)), Some(RetainReason::Slow));
        // Forced (explicit context): kept even when fast.
        let mut forced = build(13, 1);
        forced.forced = true;
        assert_eq!(sink.offer(forced), Some(RetainReason::Forced));
        let stats = sink.stats();
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.retained, 2);
        assert_eq!(stats.sampled, 0);
    }

    #[test]
    fn append_span_extends_a_retained_trace() {
        let sink = TraceSink::new(
            4,
            SamplingPolicy {
                probability: 1.0,
                top_percent: 0.0,
                seed: 2,
                slow_threshold: None,
            },
        );
        let t = build(77, 1);
        let started = t.started;
        sink.offer(t).unwrap();
        assert!(sink.append_span(
            77,
            "serialize",
            started + Duration::from_millis(2),
            Duration::from_micros(300),
        ));
        let got = sink.get(77).unwrap();
        let ser = got.spans.iter().find(|s| s.name == "serialize").unwrap();
        assert_eq!(ser.parent, got.root);
        assert!(got.well_formed());
        assert!(got.duration_ns >= 2_000_000);
        // Unknown trace: no-op.
        assert!(!sink.append_span(78, "serialize", started, Duration::ZERO));
    }

    #[test]
    fn json_rendering_includes_tree_fields() {
        let mut tb = TraceBuilder::new(9, 5, true, Instant::now());
        let root = tb.root();
        let search = tb.add("search", root, 10, 100);
        tb.add_detail("shard", search, 12, 40, Some(3), None, 0);
        tb.add_detail("cache.result", root, 2, 5, None, Some("miss"), 0);
        tb.set_epoch(4);
        let t = tb.finish(Duration::from_millis(1), false, false);
        assert!(t.well_formed());
        assert_eq!(t.depth(), 3);
        let json = trace_to_json(&t).encode();
        assert!(json.contains("\"trace_id\""));
        assert!(json.contains("\"shard\":3"));
        assert!(json.contains("\"cache\":\"miss\""));
        assert!(json.contains("\"epoch\":4"));
        let summary = trace_summary_json(&t).encode();
        assert!(summary.contains("\"depth\":3"));
    }
}
