//! Dependency-free metrics for the Koios workspace.
//!
//! The serving stack needs to *see* where a query's budget goes — queue
//! wait, per-stage engine time, lock contention on the shared caches — but
//! this environment cannot reach crates.io, so the usual `prometheus` /
//! `metrics` crates are out. This crate hand-rolls the minimal primitives
//! on `std::sync::atomic` alone:
//!
//! * [`Counter`] — a lock-free monotone `u64`.
//! * [`Gauge`] — a lock-free signed instantaneous value (queue depth).
//! * [`Histogram`] — a fixed array of 65 `AtomicU64` buckets indexed by
//!   the bit width of the recorded nanosecond value (log2 buckets), plus
//!   atomic sum and max. Recording is wait-free; quantiles (p50/p90/p99)
//!   are estimated from a [`HistogramSnapshot`] by linear interpolation
//!   inside the target bucket, so any estimate is within 2× of the true
//!   value. Snapshots merge associatively, which is what lets per-shard
//!   and per-service views compose.
//! * [`Span`] — an RAII guard that records its `Instant`-measured
//!   lifetime into a histogram on drop (per-query stage tracing).
//! * [`Registry`] — named metric families with `label="value"` series
//!   (`stage`, `shard`, `route`, …), get-or-create handles shared as
//!   `Arc`, rendered to the Prometheus text exposition format by
//!   [`Registry::render_prometheus`] for a `GET /metrics` route.
//!
//! Time is always recorded in **nanoseconds** and rendered in **seconds**
//! (histogram families should be named `*_seconds` per Prometheus
//! convention).
//!
//! ```
//! use koios_telemetry::Registry;
//! use std::time::Duration;
//!
//! let registry = Registry::new();
//! let refine = registry.histogram(
//!     "koios_stage_seconds",
//!     "Wall-clock time per pipeline stage",
//!     &[("stage", "refine")],
//! );
//! {
//!     let _span = refine.span(); // records on drop
//! }
//! refine.record_duration(Duration::from_micros(250));
//! let text = registry.render_prometheus();
//! assert!(text.contains("# TYPE koios_stage_seconds histogram"));
//! assert!(text.contains("koios_stage_seconds_bucket{stage=\"refine\",le=\"+Inf\"} 2"));
//! ```

pub mod profile;
pub mod trace;

pub use profile::{CountedTicker, Profiler, RealTicker, SelfTime, Ticker};
pub use trace::{
    RetainReason, SamplingPolicy, SpanRecord, Trace, TraceBuilder, TraceConfig, TraceContext,
    TraceSink, TraceSinkStats,
};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Number of log2 buckets: bucket `b` holds values whose bit width is `b`
/// (bucket 0 holds exactly the value 0, bucket 64 holds values with the
/// top bit set). Covers the full `u64` nanosecond range — ~584 years.
pub const NUM_BUCKETS: usize = 65;

/// A lock-free monotone counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Overwrites the total — for scrape-time synchronisation of a counter
    /// whose source of truth is maintained elsewhere (e.g. the cache
    /// hit/miss/eviction totals kept by `CacheCounters`). The caller is
    /// responsible for only ever storing monotone values.
    pub fn store(&self, total: u64) {
        self.value.store(total, Ordering::Relaxed);
    }
}

/// A lock-free instantaneous value (e.g. queue depth).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// The log2 bucket of a nanosecond value: its bit width.
#[inline]
fn bucket_of(ns: u64) -> usize {
    (u64::BITS - ns.leading_zeros()) as usize
}

/// The *inclusive* upper bound of bucket `b`, in nanoseconds
/// (`2^b - 1`; bucket 64 saturates at `u64::MAX`).
fn bucket_upper_ns(b: usize) -> u64 {
    if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// The inclusive lower bound of bucket `b`, in nanoseconds.
fn bucket_lower_ns(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

/// A wait-free histogram of nanosecond durations over fixed log2 buckets.
///
/// [`record`](Histogram::record) is a single `fetch_add` on the value's
/// bucket (plus sum/max updates) — cheap enough for per-request hot
/// paths. Reads go through [`snapshot`](Histogram::snapshot).
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count())
            .field("sum_ns", &s.sum_ns)
            .field("max_ns", &s.max_ns)
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one nanosecond observation.
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records a [`Duration`] (saturating at `u64::MAX` ns).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Starts a [`Span`] guard that records its lifetime on drop.
    pub fn span(&self) -> Span<'_> {
        Span {
            histogram: self,
            start: Instant::now(),
        }
    }

    /// A point-in-time copy of the buckets (individually consistent;
    /// concurrent recording may race the aggregate fields by a sample,
    /// which is fine for monitoring).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum_ns: self.sum.load(Ordering::Relaxed),
            max_ns: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An RAII guard measuring a region: created by [`Histogram::span`],
/// records the elapsed nanoseconds into the histogram when dropped.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span<'a> {
    histogram: &'a Histogram,
    start: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.histogram.record_duration(self.start.elapsed());
    }
}

/// A mergeable point-in-time view of a [`Histogram`].
#[derive(Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (index = bit width of the value).
    pub buckets: [u64; NUM_BUCKETS],
    /// Sum of all observations, nanoseconds.
    pub sum_ns: u64,
    /// Largest observation, nanoseconds.
    pub max_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; NUM_BUCKETS],
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl std::fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramSnapshot")
            .field("count", &self.count())
            .field("sum_ns", &self.sum_ns)
            .field("max_ns", &self.max_ns)
            .finish()
    }
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_ns as f64 / n as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) in nanoseconds by
    /// locating the bucket of the target rank and interpolating linearly
    /// inside it. The estimate lands in the same log2 bucket as the true
    /// order statistic, so it is always within a factor of 2. Returns 0
    /// when empty; `q >= 1.0` returns the exact recorded maximum.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        if q >= 1.0 {
            return self.max_ns as f64;
        }
        // Rank of the target order statistic, 1-based.
        let rank = (q * n as f64).floor() as u64 + 1;
        let rank = rank.min(n);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = bucket_lower_ns(b) as f64;
                let hi = (bucket_upper_ns(b) as f64).min(self.max_ns as f64).max(lo);
                // Position of the rank inside this bucket, in (0, 1].
                let frac = (rank - seen) as f64 / c as f64;
                return lo + (hi - lo) * frac;
            }
            seen += c;
        }
        self.max_ns as f64
    }

    /// The median estimate, nanoseconds.
    pub fn p50_ns(&self) -> f64 {
        self.quantile_ns(0.50)
    }

    /// The 90th percentile estimate, nanoseconds.
    pub fn p90_ns(&self) -> f64 {
        self.quantile_ns(0.90)
    }

    /// The 99th percentile estimate, nanoseconds.
    pub fn p99_ns(&self) -> f64 {
        self.quantile_ns(0.99)
    }

    /// Folds another snapshot in (bucket-wise sum, max of maxes) —
    /// commutative and associative, so shard/service views compose in any
    /// grouping.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Metric family kinds, matching the Prometheus `# TYPE` keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    kind: Kind,
    help: String,
    /// Rendered label set (`stage="refine"`) → instrument, sorted so the
    /// exposition output is deterministic.
    series: BTreeMap<String, Instrument>,
}

/// A registry of named metric families with labelled series.
///
/// Handles are get-or-create: the first call for a `(name, labels)` pair
/// creates the instrument, later calls return the same `Arc` — so the
/// instrumented code and the scraper share state through nothing but the
/// registry and a name. Instrument reads/writes are lock-free; the
/// registry mutex guards only creation and rendering.
///
/// # Panics
///
/// Requesting an existing family under a different kind (e.g.
/// `counter("x", ..)` after `histogram("x", ..)`) panics: that is a
/// programming error that would corrupt the exposition output.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Family>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("registry lock");
        f.debug_struct("Registry")
            .field("families", &inner.len())
            .finish()
    }
}

/// Renders a label set (sorted by key, values escaped) as
/// `key="value",key2="value2"` — empty string for no labels.
fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort_unstable();
    let mut out = String::new();
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out
}

/// Whether `name` is a valid Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn instrument(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: Kind,
        create: impl FnOnce() -> Instrument,
    ) -> Instrument {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        let mut inner = self.inner.lock().expect("registry lock");
        let family = inner.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name:?} already registered as a {}",
            family.kind.as_str()
        );
        family
            .series
            .entry(render_labels(labels))
            .or_insert_with(create)
            .clone()
    }

    /// The counter `name{labels}`, created with `help` on first sight.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.instrument(name, help, labels, Kind::Counter, || {
            Instrument::Counter(Arc::new(Counter::new()))
        }) {
            Instrument::Counter(c) => c,
            _ => unreachable!("kind checked above"),
        }
    }

    /// The gauge `name{labels}`, created with `help` on first sight.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.instrument(name, help, labels, Kind::Gauge, || {
            Instrument::Gauge(Arc::new(Gauge::new()))
        }) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("kind checked above"),
        }
    }

    /// The histogram `name{labels}`, created with `help` on first sight.
    /// Histograms record nanoseconds and render as seconds; name families
    /// `*_seconds` accordingly.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.instrument(name, help, labels, Kind::Histogram, || {
            Instrument::Histogram(Arc::new(Histogram::new()))
        }) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Renders every family in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers, one line per series,
    /// histograms as cumulative `_bucket{le="…"}` lines (seconds) plus
    /// `_sum` / `_count`. Families and series are emitted in sorted order
    /// so consecutive scrapes of unchanged state are byte-identical.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("registry lock");
        let mut out = String::new();
        for (name, family) in inner.iter() {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            out.push_str(&family.help.replace('\\', "\\\\").replace('\n', "\\n"));
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(family.kind.as_str());
            out.push('\n');
            for (labels, instrument) in family.series.iter() {
                match instrument {
                    Instrument::Counter(c) => {
                        render_series_line(&mut out, name, "", labels, None, c.get() as f64);
                    }
                    Instrument::Gauge(g) => {
                        render_series_line(&mut out, name, "", labels, None, g.get() as f64);
                    }
                    Instrument::Histogram(h) => {
                        let snap = h.snapshot();
                        // Emit buckets only up to the highest occupied one —
                        // 65 lines per empty series would drown the output.
                        let top = snap
                            .buckets
                            .iter()
                            .rposition(|&c| c > 0)
                            .map(|b| b + 1)
                            .unwrap_or(0);
                        let mut cum = 0u64;
                        for b in 0..top {
                            cum += snap.buckets[b];
                            let le = format!("{}", bucket_upper_ns(b) as f64 / 1e9);
                            render_series_line(
                                &mut out,
                                name,
                                "_bucket",
                                labels,
                                Some(&le),
                                cum as f64,
                            );
                        }
                        let count = snap.count();
                        render_series_line(
                            &mut out,
                            name,
                            "_bucket",
                            labels,
                            Some("+Inf"),
                            count as f64,
                        );
                        render_series_line(
                            &mut out,
                            name,
                            "_sum",
                            labels,
                            None,
                            snap.sum_ns as f64 / 1e9,
                        );
                        render_series_line(&mut out, name, "_count", labels, None, count as f64);
                    }
                }
            }
        }
        out
    }
}

/// Appends one exposition line: `name[suffix]{labels[,le="…"]} value`.
fn render_series_line(
    out: &mut String,
    name: &str,
    suffix: &str,
    labels: &str,
    le: Option<&str>,
    value: f64,
) {
    out.push_str(name);
    out.push_str(suffix);
    let le_part = le.map(|le| format!("le=\"{le}\""));
    match (labels.is_empty(), le_part) {
        (true, None) => {}
        (true, Some(le)) => {
            out.push('{');
            out.push_str(&le);
            out.push('}');
        }
        (false, None) => {
            out.push('{');
            out.push_str(labels);
            out.push('}');
        }
        (false, Some(le)) => {
            out.push('{');
            out.push_str(labels);
            out.push(',');
            out.push_str(&le);
            out.push('}');
        }
    }
    out.push(' ');
    // `{}` on f64 never uses scientific notation and prints integers bare.
    out.push_str(&format!("{value}"));
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.store(9);
        assert_eq!(c.get(), 9);

        let g = Gauge::new();
        g.inc();
        g.add(10);
        g.dec();
        assert_eq!(g.get(), 10);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn buckets_partition_the_value_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 0..NUM_BUCKETS {
            assert_eq!(bucket_of(bucket_lower_ns(b)), b);
            assert_eq!(bucket_of(bucket_upper_ns(b)), b);
        }
    }

    /// The sorted-reference quantile with the same rank convention as
    /// `quantile_ns`.
    fn reference_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).floor() as usize + 1).min(sorted.len());
        sorted[rank - 1]
    }

    fn assert_quantiles_close(values: &[u64]) {
        let h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        for q in [0.1, 0.5, 0.9, 0.99] {
            let est = snap.quantile_ns(q);
            let exact = reference_quantile(&sorted, q) as f64;
            // The estimate interpolates inside the true value's log2
            // bucket, so it can be off by at most 2× in either direction.
            assert!(
                est <= exact * 2.0 + 1.0 && exact <= est * 2.0 + 1.0,
                "q={q}: estimate {est} too far from exact {exact}"
            );
        }
        assert_eq!(snap.quantile_ns(1.0), *sorted.last().unwrap() as f64);
        assert_eq!(snap.max_ns, *sorted.last().unwrap());
        assert_eq!(snap.count(), values.len() as u64);
        assert_eq!(snap.sum_ns, values.iter().sum::<u64>());
    }

    #[test]
    fn quantiles_track_a_uniform_distribution() {
        let values: Vec<u64> = (1..=100_000u64).collect();
        assert_quantiles_close(&values);
    }

    #[test]
    fn quantiles_track_a_constant_distribution() {
        assert_quantiles_close(&vec![1_234_567; 1000]);
        let h = Histogram::new();
        for _ in 0..1000 {
            h.record(1_048_576); // exactly 2^20
        }
        // Every sample in one bucket whose upper bound is capped by max:
        // the estimate must not exceed the recorded maximum.
        assert!(h.snapshot().p99_ns() <= 1_048_576.0);
    }

    #[test]
    fn quantiles_track_a_heavy_tailed_distribution() {
        // 99% fast (~1 µs), 1% slow (~1 s): the p99 must see the tail.
        let mut values = vec![1_000u64; 990];
        values.extend(std::iter::repeat_n(1_000_000_000u64, 10));
        assert_quantiles_close(&values);
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        assert!(snap.p50_ns() < 3_000.0);
        assert!(snap.quantile_ns(0.995) > 500_000_000.0);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.p50_ns(), 0.0);
        assert_eq!(snap.quantile_ns(1.0), 0.0);
        assert_eq!(snap.mean_ns(), 0.0);
        assert_eq!(snap, HistogramSnapshot::default());
    }

    #[test]
    fn concurrent_recording_loses_no_samples() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        let h = Histogram::new();
        std::thread::scope(|sc| {
            for t in 0..THREADS {
                let h = &h;
                sc.spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record(t * PER_THREAD + i + 1);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count(), THREADS * PER_THREAD);
        let n = THREADS * PER_THREAD;
        assert_eq!(snap.sum_ns, n * (n + 1) / 2);
        assert_eq!(snap.max_ns, n);
    }

    #[test]
    fn snapshot_merge_is_associative_and_commutative() {
        let mk = |values: &[u64]| {
            let h = Histogram::new();
            for &v in values {
                h.record(v);
            }
            h.snapshot()
        };
        let a = mk(&[1, 5, 900, 70_000]);
        let b = mk(&[2, 2, 2]);
        let c = mk(&[1_000_000_000, 40]);

        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);

        // a + b == b + a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        // Identity.
        let mut with_empty = a.clone();
        with_empty.merge(&HistogramSnapshot::default());
        assert_eq!(with_empty, a);

        assert_eq!(left.count(), 9);
        assert_eq!(left.max_ns, 1_000_000_000);
    }

    #[test]
    fn span_records_its_lifetime_on_drop() {
        let h = Histogram::new();
        {
            let _span = h.span();
            std::thread::sleep(Duration::from_millis(2));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1);
        assert!(snap.max_ns >= 2_000_000, "span under-measured: {snap:?}");
    }

    #[test]
    fn registry_shares_instruments_by_name_and_labels() {
        let r = Registry::new();
        let a = r.counter("koios_requests_total", "requests", &[("route", "/search")]);
        let b = r.counter("koios_requests_total", "requests", &[("route", "/search")]);
        let other = r.counter("koios_requests_total", "requests", &[("route", "/stats")]);
        a.inc();
        assert_eq!(b.get(), 1, "same (name, labels) shares one counter");
        assert_eq!(other.get(), 0);

        let h1 = r.histogram("koios_stage_seconds", "stages", &[("stage", "refine")]);
        let h2 = r.histogram("koios_stage_seconds", "stages", &[("stage", "refine")]);
        h1.record(5);
        assert_eq!(h2.snapshot().count(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("koios_thing", "x", &[]);
        let _ = r.histogram("koios_thing", "x", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_are_rejected() {
        let _ = Registry::new().counter("0bad name", "x", &[]);
    }

    #[test]
    fn labels_render_sorted_and_escaped() {
        assert_eq!(render_labels(&[]), "");
        assert_eq!(
            render_labels(&[("stage", "refine"), ("shard", "0")]),
            "shard=\"0\",stage=\"refine\""
        );
        assert_eq!(
            render_labels(&[("q", "a\"b\\c\nd")]),
            "q=\"a\\\"b\\\\c\\nd\""
        );
    }

    /// A minimal validity check for one exposition line.
    fn assert_valid_line(line: &str) {
        if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
            return;
        }
        let (series, value) = line.rsplit_once(' ').expect("line has a value");
        assert!(
            value.parse::<f64>().is_ok(),
            "value not a float: {value:?} in {line:?}"
        );
        let name_end = series.find('{').unwrap_or(series.len());
        assert!(
            valid_metric_name(&series[..name_end]),
            "bad series name in {line:?}"
        );
        if let Some(rest) = series.get(name_end..) {
            if !rest.is_empty() {
                assert!(rest.starts_with('{') && rest.ends_with('}'), "{line:?}");
            }
        }
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let r = Registry::new();
        r.counter(
            "koios_requests_total",
            "Total requests",
            &[("route", "/search")],
        )
        .add(7);
        r.gauge("koios_queue_depth", "Jobs waiting", &[]).set(3);
        let h = r.histogram(
            "koios_stage_seconds",
            "Stage wall time",
            &[("stage", "refine")],
        );
        h.record(1_500); // bucket 11
        h.record(1_000_000); // bucket 20
        let text = r.render_prometheus();
        for line in text.lines() {
            assert_valid_line(line);
        }
        assert!(text.contains("# TYPE koios_requests_total counter"));
        assert!(text.contains("koios_requests_total{route=\"/search\"} 7"));
        assert!(text.contains("# TYPE koios_queue_depth gauge"));
        assert!(text.contains("koios_queue_depth 3"));
        assert!(text.contains("# TYPE koios_stage_seconds histogram"));
        assert!(text.contains("koios_stage_seconds_bucket{stage=\"refine\",le=\"+Inf\"} 2"));
        assert!(text.contains("koios_stage_seconds_count{stage=\"refine\"} 2"));
        // Cumulative bucket counts are monotone non-decreasing.
        let mut last = 0.0;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: f64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
            assert!(v >= last, "non-monotone buckets: {text}");
            last = v;
        }
        // Two identical scrapes are byte-identical.
        assert_eq!(text, r.render_prometheus());
    }

    #[test]
    fn render_emits_no_buckets_for_empty_histograms() {
        let r = Registry::new();
        let _ = r.histogram(
            "koios_stage_seconds",
            "Stage wall time",
            &[("stage", "merge")],
        );
        let text = r.render_prometheus();
        assert!(text.contains("koios_stage_seconds_bucket{stage=\"merge\",le=\"+Inf\"} 0"));
        // +Inf only — no finite-bucket lines for an empty series.
        assert_eq!(text.matches("_bucket{").count(), 1);
        assert!(text.contains("koios_stage_seconds_count{stage=\"merge\"} 0"));
    }
}
