//! Cooperative wall-clock profiler — the *sampling* side.
//!
//! Worker threads publish their current `(stage, shard)` into per-thread
//! atomic slots (`koios_common::profile`); a [`Profiler`] owns a sampler
//! thread that scans every slot once per tick and bumps one cell of a
//! lock-free stage×shard counter matrix. Sample counts are proportional
//! to wall time spent per stage, so the matrix renders directly as
//! flamegraph-compatible collapsed stacks ([`Profiler::collapsed_stacks`])
//! and a self-time table ([`Profiler::self_time`]).
//!
//! The tick source is abstracted behind [`Ticker`] so tests drive the
//! sampler with a deterministic fake clock: a [`CountedTicker`] fires an
//! exact number of times with no sleeping, making sampled counts exact.
//!
//! Overhead model: workers pay one relaxed atomic swap per *phase* (not
//! per tuple); the sampler pays one registry scan per tick. At the default
//! 1 ms period that is ~1k scans/s over a handful of slots — the
//! `profile_overhead` harness experiment gates the end-to-end cost at
//! ≤ 2 % qps.

use koios_common::profile::{decode, sample_slots, Stage, NUM_STAGES};
use koios_common::Json;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Shard columns tracked per stage: shards 0..63 get their own column,
/// anything larger folds into the last ("other") column. One more column
/// (index 0) counts samples with no shard attribution.
const SHARD_COLS: usize = 66;

/// A tick source for the sampler thread. Returns `false` to stop.
pub trait Ticker: Send + 'static {
    /// Blocks until the next sample should be taken; `false` ends the
    /// sampler loop.
    fn tick(&mut self) -> bool;
}

/// Wall-clock ticker: one tick per `period`, stopping when the profiler
/// is dropped. Sleeps in short bounded naps so `stop()` is never blocked
/// behind a long period.
pub struct RealTicker {
    period: Duration,
    running: Arc<AtomicBool>,
}

impl Ticker for RealTicker {
    fn tick(&mut self) -> bool {
        let mut left = self.period;
        while !left.is_zero() {
            if !self.running.load(Ordering::Relaxed) {
                return false;
            }
            let nap = left.min(Duration::from_millis(20));
            std::thread::sleep(nap);
            left = left.saturating_sub(nap);
        }
        self.running.load(Ordering::Relaxed)
    }
}

/// Deterministic ticker: fires exactly `remaining` times, no sleeping.
/// The fake clock of the sampling-determinism tests.
pub struct CountedTicker {
    remaining: u64,
}

impl CountedTicker {
    /// A ticker that fires exactly `n` times.
    pub fn new(n: u64) -> Self {
        CountedTicker { remaining: n }
    }
}

impl Ticker for CountedTicker {
    fn tick(&mut self) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        true
    }
}

/// The lock-free sample accumulation matrix: `NUM_STAGES × SHARD_COLS`
/// counters plus a total-ticks counter.
#[derive(Debug)]
struct Matrix {
    cells: Vec<AtomicU64>,
    ticks: AtomicU64,
}

impl Matrix {
    fn new() -> Self {
        Matrix {
            cells: (0..NUM_STAGES * SHARD_COLS)
                .map(|_| AtomicU64::new(0))
                .collect(),
            ticks: AtomicU64::new(0),
        }
    }

    fn col_of(shard: Option<u32>) -> usize {
        match shard {
            None => 0,
            Some(s) => (s as usize + 1).min(SHARD_COLS - 1),
        }
    }

    fn bump(&self, stage_id: u8, shard: Option<u32>) {
        let stage = (stage_id as usize).min(NUM_STAGES - 1);
        let idx = stage * SHARD_COLS + Self::col_of(shard);
        self.cells[idx].fetch_add(1, Ordering::Relaxed);
    }

    fn get(&self, stage: usize, col: usize) -> u64 {
        self.cells[stage * SHARD_COLS + col].load(Ordering::Relaxed)
    }
}

/// One row of the self-time table.
#[derive(Debug, Clone, PartialEq)]
pub struct SelfTime {
    /// Stage name.
    pub stage: &'static str,
    /// Samples observed in this stage (all shards folded).
    pub samples: u64,
    /// Fraction of all non-idle samples (0 when nothing was sampled).
    pub fraction: f64,
}

/// The sampling profiler: owns the counter matrix and (when started with
/// a [`RealTicker`]) the sampler thread. Dropping the profiler stops the
/// thread and releases the publish enable.
#[derive(Debug)]
pub struct Profiler {
    matrix: Arc<Matrix>,
    running: Arc<AtomicBool>,
    period: Duration,
    handle: Option<JoinHandle<()>>,
}

impl Profiler {
    /// Starts a wall-clock sampler ticking every `period` (clamped to
    /// ≥ 100 µs) and enables stage publishing process-wide.
    pub fn start(period: Duration) -> Profiler {
        let period = period.max(Duration::from_micros(100));
        let running = Arc::new(AtomicBool::new(true));
        let ticker = RealTicker {
            period,
            running: Arc::clone(&running),
        };
        let mut p = Self::with_ticker(ticker);
        p.running = running;
        p.period = period;
        p
    }

    /// Starts a sampler driven by an arbitrary [`Ticker`] (tests pass a
    /// [`CountedTicker`] for exact, sleep-free sampling). Publishing is
    /// enabled until the profiler is dropped.
    pub fn with_ticker(mut ticker: impl Ticker) -> Profiler {
        koios_common::profile::enable();
        let matrix = Arc::new(Matrix::new());
        let thread_matrix = Arc::clone(&matrix);
        let handle = std::thread::Builder::new()
            .name("koios-profiler".into())
            .spawn(move || {
                let mut slots = Vec::new();
                while ticker.tick() {
                    sample_once(&thread_matrix, &mut slots);
                }
            })
            .expect("spawn profiler sampler");
        Profiler {
            matrix,
            running: Arc::new(AtomicBool::new(true)),
            period: Duration::ZERO,
            handle: Some(handle),
        }
    }

    /// Waits for the sampler thread to finish its remaining ticks — only
    /// meaningful with a finite ticker like [`CountedTicker`]; a
    /// wall-clock profiler joins on drop instead.
    pub fn join_sampler(&mut self) {
        if let Some(h) = self.handle.take() {
            h.join().expect("profiler sampler panicked");
        }
    }

    /// Total sampler ticks so far.
    pub fn ticks(&self) -> u64 {
        self.matrix.ticks.load(Ordering::Relaxed)
    }

    /// The configured sampling period (zero for custom tickers).
    pub fn period(&self) -> Duration {
        self.period
    }

    /// Samples observed for `stage`, folded across shards.
    pub fn stage_samples(&self, stage: Stage) -> u64 {
        (0..SHARD_COLS)
            .map(|c| self.matrix.get(stage as usize, c))
            .sum()
    }

    /// Flamegraph-compatible collapsed stacks: one `frames count` line per
    /// non-zero cell, frames joined by `;` rooted at `koios`. Shard
    /// attribution appears as a third frame (`koios;shard;shard:3 127`).
    /// Idle samples are reported under `koios;idle` so totals add up to
    /// the tick-by-slot product.
    pub fn collapsed_stacks(&self) -> String {
        let mut out = String::new();
        for stage in Stage::ALL {
            let base = self.matrix.get(stage as usize, 0);
            if base > 0 {
                out.push_str(&format!("koios;{} {}\n", stage.name(), base));
            }
            for col in 1..SHARD_COLS {
                let n = self.matrix.get(stage as usize, col);
                if n == 0 {
                    continue;
                }
                let shard = col - 1;
                if col == SHARD_COLS - 1 {
                    out.push_str(&format!("koios;{};shard:other {}\n", stage.name(), n));
                } else {
                    out.push_str(&format!("koios;{};shard:{} {}\n", stage.name(), shard, n));
                }
            }
        }
        out
    }

    /// The self-time table: per-stage sample counts and their fraction of
    /// all non-idle samples, descending by samples (idle is reported last
    /// with fraction 0).
    pub fn self_time(&self) -> Vec<SelfTime> {
        let mut rows: Vec<SelfTime> = Stage::ALL
            .iter()
            .map(|&s| SelfTime {
                stage: s.name(),
                samples: self.stage_samples(s),
                fraction: 0.0,
            })
            .collect();
        let busy: u64 = rows
            .iter()
            .filter(|r| r.stage != "idle")
            .map(|r| r.samples)
            .sum();
        if busy > 0 {
            for r in rows.iter_mut().filter(|r| r.stage != "idle") {
                r.fraction = r.samples as f64 / busy as f64;
            }
        }
        rows.sort_by(|a, b| {
            (a.stage == "idle")
                .cmp(&(b.stage == "idle"))
                .then(b.samples.cmp(&a.samples))
                .then(a.stage.cmp(b.stage))
        });
        rows
    }

    /// The `GET /debug/profile` report: sampler configuration, the
    /// self-time table and the collapsed-stack text in one JSON object.
    pub fn to_json(&self) -> Json {
        let rows = self.self_time();
        Json::obj([
            ("ticks", Json::num(self.ticks() as f64)),
            ("period_us", Json::num(self.period.as_micros() as f64)),
            (
                "registered_threads",
                Json::num(koios_common::profile::registered_slots() as f64),
            ),
            (
                "self_time",
                Json::arr(rows.iter().map(|r| {
                    Json::obj([
                        ("stage", Json::str(r.stage)),
                        ("samples", Json::num(r.samples as f64)),
                        ("fraction", Json::num(r.fraction)),
                    ])
                })),
            ),
            ("collapsed", Json::str(self.collapsed_stacks())),
        ])
    }
}

impl Drop for Profiler {
    fn drop(&mut self) {
        self.running.store(false, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            h.join().ok();
        }
        koios_common::profile::disable();
    }
}

/// One sampler tick: scan every registered slot and bump its cell.
/// `slots` is scratch reused across ticks to avoid per-tick allocation.
fn sample_once(matrix: &Matrix, slots: &mut Vec<u64>) {
    sample_slots(slots);
    for &bits in slots.iter() {
        let (stage_id, shard) = decode(bits);
        matrix.bump(stage_id, shard);
    }
    matrix.ticks.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use koios_common::profile::{enter, enter_shard};
    use std::sync::Mutex;

    // Slot registration and the enable refcount are process-global; keep
    // profiler tests serialized.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn counted_ticker_samples_exactly() {
        let _lock = TEST_LOCK.lock().unwrap();
        let _g = {
            koios_common::profile::enable();
            let g = enter(Stage::Refine).expect("enabled");
            koios_common::profile::disable();
            g
        };
        let mut p = Profiler::with_ticker(CountedTicker::new(250));
        p.join_sampler();
        assert_eq!(p.ticks(), 250);
        assert_eq!(p.stage_samples(Stage::Refine), 250);
        assert_eq!(p.stage_samples(Stage::Verify), 0);
    }

    #[test]
    fn sampling_is_deterministic_with_a_fake_clock() {
        let _lock = TEST_LOCK.lock().unwrap();
        let run = || {
            koios_common::profile::enable();
            let g = enter_shard(Stage::Shard, 2).expect("enabled");
            koios_common::profile::disable();
            let mut p = Profiler::with_ticker(CountedTicker::new(100));
            p.join_sampler();
            drop(g);
            (p.collapsed_stacks(), p.self_time())
        };
        let (stacks_a, table_a) = run();
        let (stacks_b, table_b) = run();
        assert_eq!(stacks_a, stacks_b, "fake-clock sampling must be exact");
        assert_eq!(table_a, table_b);
        assert!(stacks_a.contains("koios;shard;shard:2 100"), "{stacks_a}");
    }

    #[test]
    fn self_time_fractions_ignore_idle() {
        let _lock = TEST_LOCK.lock().unwrap();
        koios_common::profile::enable();
        let g = enter(Stage::Verify).expect("enabled");
        koios_common::profile::disable();
        let mut p = Profiler::with_ticker(CountedTicker::new(10));
        p.join_sampler();
        drop(g);
        let rows = p.self_time();
        let verify = rows.iter().find(|r| r.stage == "verify").unwrap();
        assert_eq!(verify.samples, 10);
        assert!((verify.fraction - 1.0).abs() < 1e-12);
        assert_eq!(rows.last().unwrap().stage, "idle");
        let json = p.to_json();
        assert_eq!(json.get("ticks").unwrap().as_u64(), Some(10));
        assert!(json
            .get("collapsed")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("koios;verify 10"));
    }

    #[test]
    fn wall_clock_profiler_ticks_and_stops() {
        let _lock = TEST_LOCK.lock().unwrap();
        let p = Profiler::start(Duration::from_micros(200));
        let _g = enter(Stage::Search).expect("start enables publishing");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while p.ticks() < 5 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(p.ticks() >= 5, "sampler must tick");
        drop(p);
        assert!(!koios_common::profile::profiling_enabled());
    }
}
