//! Zipf / truncated power-law sampling.
//!
//! Implemented over `rand` directly (the `rand_distr` crate is not on the
//! offline allow-list): precompute the normalised cumulative weights
//! `w_i ∝ (i+1)^{-a}` and invert a uniform draw by binary search. Memory is
//! one `f64` per item; sampling is `O(log n)`.

use rand::Rng;

/// A Zipf distribution over ranks `0..n` with exponent `a ≥ 0`
/// (`a = 0` degenerates to uniform).
#[derive(Debug, Clone)]
pub struct Zipf {
    cum: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `a` is negative/NaN.
    pub fn new(n: usize, a: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(a >= 0.0 && !a.is_nan(), "exponent must be non-negative");
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += ((i + 1) as f64).powf(-a);
            cum.push(total);
        }
        for c in cum.iter_mut() {
            *c /= total;
        }
        // Guard the tail against rounding: the last bucket must catch u→1.
        *cum.last_mut().expect("non-empty") = 1.0;
        Zipf { cum }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// Whether the support is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }

    /// Samples a rank in `0..n` (rank 0 is the most likely).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cum.partition_point(|&c| c < u).min(self.cum.len() - 1)
    }

    /// The probability mass of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cum[0]
        } else {
            self.cum[i] - self.cum[i - 1]
        }
    }
}

/// Samples a set cardinality from a truncated power law on `[min, max]`
/// with exponent `a` (`P(size) ∝ size^{-a}`).
#[derive(Debug, Clone)]
pub struct SizeDist {
    min: usize,
    zipf: Zipf,
}

impl SizeDist {
    /// Builds the distribution over `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min == 0` or `min > max`.
    pub fn new(min: usize, max: usize, a: f64) -> Self {
        assert!(min > 0 && min <= max, "invalid size range [{min}, {max}]");
        let n = max - min + 1;
        // Weight size s = min + i as s^-a.
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += ((min + i) as f64).powf(-a);
            cum.push(total);
        }
        for c in cum.iter_mut() {
            *c /= total;
        }
        *cum.last_mut().expect("non-empty") = 1.0;
        SizeDist {
            min,
            zipf: Zipf { cum },
        }
    }

    /// Samples a size in `[min, max]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.min + self.zipf.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_exponent_zero() {
        let z = Zipf::new(4, 0.0);
        for i in 0..4 {
            assert!((z.pmf(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn rank_zero_dominates_with_high_exponent() {
        let z = Zipf::new(100, 2.0);
        assert!(z.pmf(0) > 0.5);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(10));
    }

    #[test]
    fn samples_cover_support_and_skew() {
        let z = Zipf::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > 2000);
        // All samples in range (indexing would have panicked otherwise).
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn size_dist_respects_bounds() {
        let d = SizeDist::new(10, 150, 1.5);
        let mut rng = StdRng::seed_from_u64(9);
        let mut minimum = usize::MAX;
        let mut maximum = 0;
        for _ in 0..5000 {
            let s = d.sample(&mut rng);
            assert!((10..=150).contains(&s));
            minimum = minimum.min(s);
            maximum = maximum.max(s);
        }
        assert_eq!(minimum, 10); // small sizes dominate a power law
        assert!(maximum > 50); // but the tail is reachable
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(64, 1.2);
        let total: f64 = (0..64).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn empty_support_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
