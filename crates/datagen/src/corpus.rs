//! The synthetic corpus generator.
//!
//! Tokens `0..vocab` are assigned round-robin to `clusters` topic clusters
//! (`topic(t) = t mod clusters`), so global token popularity (Zipfian by
//! token id) is spread evenly across topics. A set draws a primary topic
//! and fills itself with a `coherence`-weighted mixture of topic members
//! and globally popular tokens — the shape of a table column: a theme plus
//! recurring boilerplate values. Embeddings come from
//! [`koios_embed::synthetic::clustered_embeddings`] with the same topic
//! assignment, except for an `oov_fraction` of tokens left vector-less.

use crate::zipf::{SizeDist, Zipf};
use koios_common::TokenId;
use koios_embed::rand_util::stream_seed;
use koios_embed::repository::{Repository, RepositoryBuilder};
use koios_embed::synthetic::clustered_embeddings;
use koios_embed::vectors::Embeddings;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic corpus (see module docs).
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// Corpus label (profile name).
    pub name: String,
    /// Number of sets.
    pub num_sets: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Smallest set cardinality.
    pub set_size_min: usize,
    /// Largest set cardinality.
    pub set_size_max: usize,
    /// Power-law exponent of the cardinality distribution (higher → more
    /// small sets; the paper's repositories are strongly skewed).
    pub set_size_exponent: f64,
    /// Zipf exponent of global token popularity (higher → longer posting
    /// lists for the head tokens; WDC ≈ high, OpenData ≈ moderate).
    pub token_exponent: f64,
    /// Number of topic clusters (semantic neighbourhoods).
    pub clusters: usize,
    /// Probability that a set element is drawn from the set's topic rather
    /// than the global popularity distribution.
    pub coherence: f64,
    /// Fraction of tokens without an embedding vector.
    pub oov_fraction: f64,
    /// Within-cluster embedding noise σ (E\[cos\] ≈ 1/(1+σ²)).
    pub noise: f64,
    /// Embedding dimensionality.
    pub dims: usize,
    /// RNG seed — everything downstream is deterministic in it.
    pub seed: u64,
}

impl CorpusSpec {
    /// A small default spec for tests and examples.
    pub fn small(seed: u64) -> Self {
        CorpusSpec {
            name: "small".to_string(),
            num_sets: 200,
            vocab_size: 1000,
            set_size_min: 4,
            set_size_max: 40,
            set_size_exponent: 1.0,
            token_exponent: 0.8,
            clusters: 100,
            coherence: 0.6,
            oov_fraction: 0.1,
            noise: 0.35,
            dims: 16,
            seed,
        }
    }
}

/// A generated corpus: the repository, its embeddings, and the topic
/// assignment used to build both.
pub struct Corpus {
    /// The generating spec.
    pub spec: CorpusSpec,
    /// Sets + interned vocabulary.
    pub repository: Repository,
    /// Clustered synthetic embeddings over the vocabulary.
    pub embeddings: Embeddings,
    /// Topic of each token (always assigned, even for OOV tokens).
    pub topics: Vec<u32>,
}

impl Corpus {
    /// Generates the corpus described by `spec`.
    pub fn generate(spec: CorpusSpec) -> Corpus {
        assert!(spec.num_sets > 0 && spec.vocab_size > 0);
        assert!(spec.clusters > 0 && spec.clusters <= spec.vocab_size);
        assert!(
            spec.set_size_max <= spec.vocab_size,
            "sets cannot exceed the vocabulary"
        );

        // Vocabulary: token t belongs to topic t % clusters; its string
        // encodes the topic so character-level similarities correlate with
        // the semantic structure too.
        let mut builder = RepositoryBuilder::new();
        let clusters = spec.clusters as u32;
        let mut topics = Vec::with_capacity(spec.vocab_size);
        let mut topic_pools: Vec<Vec<TokenId>> = vec![Vec::new(); spec.clusters];
        for t in 0..spec.vocab_size {
            let topic = (t as u32) % clusters;
            let id = builder.intern(&format!("c{topic:05}w{t:07}"));
            debug_assert_eq!(id.idx(), t);
            topics.push(topic);
            topic_pools[topic as usize].push(id);
        }

        // Sets: topic-coherent mixtures over a Zipfian popularity base.
        let size_dist = SizeDist::new(spec.set_size_min, spec.set_size_max, spec.set_size_exponent);
        let global = Zipf::new(spec.vocab_size, spec.token_exponent);
        let topic_pick = Zipf::new(spec.clusters, 0.4); // mildly skewed topics
        for s in 0..spec.num_sets {
            let mut rng = StdRng::seed_from_u64(stream_seed(spec.seed, 0x5E70 ^ s as u64));
            let size = size_dist.sample(&mut rng);
            let topic = topic_pick.sample(&mut rng);
            let pool = &topic_pools[topic];
            let mut tokens: Vec<TokenId> = Vec::with_capacity(size);
            let mut attempts = 0usize;
            while tokens.len() < size && attempts < size * 20 {
                attempts += 1;
                let tok = if rng.gen::<f64>() < spec.coherence {
                    pool[rng.gen_range(0..pool.len())]
                } else {
                    TokenId(global.sample(&mut rng) as u32)
                };
                if !tokens.contains(&tok) {
                    tokens.push(tok);
                }
            }
            // Saturated topic pools fall back to a global linear probe so the
            // requested cardinality is always reached.
            let mut probe = 0u32;
            while tokens.len() < size {
                let tok = TokenId(probe % spec.vocab_size as u32);
                if !tokens.contains(&tok) {
                    tokens.push(tok);
                }
                probe += 1;
            }
            builder.add_token_set(&format!("{}-{s}", spec.name), tokens);
        }
        let repository = builder.build();

        // Embeddings: topic = cluster; an `oov_fraction` of tokens stays
        // vector-less (paper: ≤30% uncovered elements per set on average).
        let assignment: Vec<Option<u32>> = (0..spec.vocab_size)
            .map(|t| {
                let mut rng =
                    StdRng::seed_from_u64(stream_seed(spec.seed, 0x00Fu64 << 48 ^ t as u64));
                if rng.gen::<f64>() < spec.oov_fraction {
                    None
                } else {
                    Some(topics[t])
                }
            })
            .collect();
        let noise = spec.noise;
        let embeddings = clustered_embeddings(spec.dims, &assignment, |_| noise, spec.seed);

        Corpus {
            spec,
            repository,
            embeddings,
            topics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koios_common::SetId;

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::generate(CorpusSpec::small(5));
        let b = Corpus::generate(CorpusSpec::small(5));
        assert_eq!(a.repository.num_sets(), b.repository.num_sets());
        for (id, set) in a.repository.iter_sets() {
            assert_eq!(set, b.repository.set(id));
        }
        let c = Corpus::generate(CorpusSpec::small(6));
        // Different seed ⇒ (almost surely) different sets.
        let differs = a
            .repository
            .iter_sets()
            .any(|(id, set)| set != c.repository.set(id));
        assert!(differs);
    }

    #[test]
    fn sizes_respect_spec_bounds() {
        let spec = CorpusSpec::small(1);
        let (min, max) = (spec.set_size_min, spec.set_size_max);
        let c = Corpus::generate(spec);
        for (_, set) in c.repository.iter_sets() {
            assert!(set.len() >= min && set.len() <= max, "size {}", set.len());
        }
        let stats = c.repository.stats();
        assert_eq!(stats.num_sets, 200);
        assert!(stats.avg_size >= min as f64 && stats.avg_size <= max as f64);
    }

    #[test]
    fn topics_align_tokens_and_strings() {
        let c = Corpus::generate(CorpusSpec::small(2));
        for t in 0..c.spec.vocab_size {
            let s = c.repository.token_str(TokenId(t as u32));
            let expect = format!("c{:05}", c.topics[t]);
            assert!(
                s.starts_with(&expect),
                "token {s} not in topic prefix {expect}"
            );
        }
    }

    #[test]
    fn embedding_coverage_tracks_oov_fraction() {
        let c = Corpus::generate(CorpusSpec::small(3));
        let cov = c.embeddings.coverage();
        assert!((cov - 0.9).abs() < 0.06, "coverage {cov}");
    }

    #[test]
    fn sets_are_topic_coherent() {
        let c = Corpus::generate(CorpusSpec::small(4));
        // For most sets, the modal topic should cover well over the
        // non-coherent expectation (1/clusters).
        let mut coherent_sets = 0;
        for (id, set) in c.repository.iter_sets() {
            let mut counts = std::collections::HashMap::new();
            for &t in set {
                *counts.entry(c.topics[t.idx()]).or_insert(0usize) += 1;
            }
            let modal = counts.values().max().copied().unwrap_or(0);
            if modal as f64 >= set.len() as f64 * 0.3 {
                coherent_sets += 1;
            }
            let _ = id;
        }
        assert!(
            coherent_sets > c.repository.num_sets() / 2,
            "only {coherent_sets} coherent sets"
        );
    }

    #[test]
    fn token_popularity_is_skewed() {
        let c = Corpus::generate(CorpusSpec::small(7));
        // Head token (id 0) should appear in far more sets than a tail one.
        let count_in_sets = |tok: TokenId| {
            c.repository
                .iter_sets()
                .filter(|(_, s)| s.contains(&tok))
                .count()
        };
        let head = count_in_sets(TokenId(0));
        let tail = count_in_sets(TokenId((c.spec.vocab_size - 1) as u32));
        assert!(head > tail, "head {head} <= tail {tail}");
        let _ = SetId(0);
    }
}
