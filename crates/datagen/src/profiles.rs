//! Laptop-scaled dataset profiles mirroring the paper's Table I.
//!
//! Absolute sizes are scaled down from the paper (the authors used a
//! 64-core / 512 GB / 4-GPU machine); the *shape* is preserved: relative
//! set counts, cardinality skew, vocabulary-to-set ratios and posting-list
//! skew. Every profile accepts a `scale` multiplier on set count and
//! vocabulary for cheaper or heavier runs (`--scale` in the harness).
//!
//! | Profile  | Paper (#sets / max / avg / vocab) | Here at scale 1.0 |
//! |----------|-----------------------------------|-------------------|
//! | DBLP     | 4,246 / 514 / 178.7 / 25,159      | 4,000 / 400 / ~130 / 25,000 |
//! | OpenData | 15,636 / 31,901 / 86.4 / 179,830  | 8,000 / 1,200 / ~60 / 30,000 |
//! | Twitter  | 27,204 / 151 / 22.6 / 72,910      | 20,000 / 150 / ~20 / 40,000 |
//! | WDC      | 1,014,369 / 10,240 / 30.6 / 328,357 | 50,000 / 800 / ~25 / 50,000 |

use crate::benchmark::QueryBenchmark;
use crate::corpus::{Corpus, CorpusSpec};

/// A named corpus spec plus the query-benchmark recipe the paper pairs
/// with it.
#[derive(Debug, Clone)]
pub struct DatasetProfile {
    /// The corpus spec.
    pub spec: CorpusSpec,
    /// Cardinality intervals for benchmark sampling; empty = uniform.
    pub intervals: Vec<(usize, usize)>,
    /// Queries per interval (or total, for uniform benchmarks).
    pub queries_per_interval: usize,
}

impl DatasetProfile {
    /// Generates the corpus.
    pub fn generate(&self) -> Corpus {
        Corpus::generate(self.spec.clone())
    }

    /// Generates the benchmark the paper pairs with this dataset.
    pub fn benchmark(&self, corpus: &Corpus, seed: u64) -> QueryBenchmark {
        if self.intervals.is_empty() {
            QueryBenchmark::uniform(&corpus.repository, self.queries_per_interval, seed)
        } else {
            QueryBenchmark::by_intervals(
                &corpus.repository,
                &self.intervals,
                self.queries_per_interval,
                seed,
            )
        }
    }

    /// All four paper profiles at the given scale.
    pub fn all(scale: f64) -> Vec<DatasetProfile> {
        vec![dblp(scale), opendata(scale), twitter(scale), wdc(scale)]
    }
}

fn scaled(n: usize, scale: f64) -> usize {
    ((n as f64 * scale).round() as usize).max(16)
}

/// Clamps a size range into the (possibly scaled-down) vocabulary.
fn clamp_sizes(min: usize, max: usize, vocab: usize) -> (usize, usize) {
    let max = max.min(vocab);
    (min.min(max), max)
}

/// DBLP-like: few, large, text-heavy sets with modest vocabulary; uniform
/// query sampling (paper draws 100 random sets).
pub fn dblp(scale: f64) -> DatasetProfile {
    let vocab = scaled(25_000, scale);
    let (size_min, size_max) = clamp_sizes(40, 400, vocab);
    DatasetProfile {
        spec: CorpusSpec {
            name: "dblp".to_string(),
            num_sets: scaled(4000, scale),
            vocab_size: vocab,
            set_size_min: size_min,
            set_size_max: size_max,
            set_size_exponent: 0.8,
            token_exponent: 0.7,
            clusters: scaled(2500, scale),
            coherence: 0.5,
            oov_fraction: 0.1,
            noise: 0.35,
            dims: 32,
            seed: 0xD81B,
        },
        intervals: Vec::new(),
        queries_per_interval: 20,
    }
}

/// OpenData-like: strongly size-skewed table columns with large vocabulary;
/// interval benchmark (the paper's six ranges, scaled).
pub fn opendata(scale: f64) -> DatasetProfile {
    let vocab = scaled(30_000, scale);
    let (size_min, size_max) = clamp_sizes(10, 1200, vocab);
    DatasetProfile {
        spec: CorpusSpec {
            name: "opendata".to_string(),
            num_sets: scaled(8000, scale),
            vocab_size: vocab,
            set_size_min: size_min,
            set_size_max: size_max,
            set_size_exponent: 1.6,
            token_exponent: 0.6,
            clusters: scaled(3000, scale),
            coherence: 0.7,
            oov_fraction: 0.15,
            noise: 0.35,
            dims: 32,
            seed: 0x09E4,
        },
        intervals: vec![(10, 100), (100, 250), (250, 500), (500, 800), (800, 1201)],
        queries_per_interval: 5,
    }
}

/// Twitter-like: many small sets (tweets as word sets).
pub fn twitter(scale: f64) -> DatasetProfile {
    let vocab = scaled(40_000, scale);
    let (size_min, size_max) = clamp_sizes(5, 150, vocab);
    DatasetProfile {
        spec: CorpusSpec {
            name: "twitter".to_string(),
            num_sets: scaled(20_000, scale),
            vocab_size: vocab,
            set_size_min: size_min,
            set_size_max: size_max,
            set_size_exponent: 1.5,
            token_exponent: 0.9,
            clusters: scaled(4000, scale),
            coherence: 0.4,
            oov_fraction: 0.1,
            noise: 0.35,
            dims: 32,
            seed: 0x7717,
        },
        intervals: Vec::new(),
        queries_per_interval: 20,
    }
}

/// WDC-like: the largest collection, with very frequent head tokens
/// (excessively long posting lists → huge candidate counts, §VIII-A1).
pub fn wdc(scale: f64) -> DatasetProfile {
    let vocab = scaled(50_000, scale);
    let (size_min, size_max) = clamp_sizes(5, 800, vocab);
    DatasetProfile {
        spec: CorpusSpec {
            name: "wdc".to_string(),
            num_sets: scaled(50_000, scale),
            vocab_size: vocab,
            set_size_min: size_min,
            set_size_max: size_max,
            set_size_exponent: 1.8,
            token_exponent: 1.05,
            clusters: scaled(5000, scale),
            coherence: 0.5,
            oov_fraction: 0.15,
            noise: 0.35,
            dims: 32,
            seed: 0x3DC0,
        },
        intervals: vec![(5, 100), (100, 250), (250, 500), (500, 801)],
        queries_per_interval: 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_scale_counts() {
        let full = opendata(1.0);
        let tenth = opendata(0.1);
        assert_eq!(full.spec.num_sets, 8000);
        assert_eq!(tenth.spec.num_sets, 800);
        assert!(tenth.spec.vocab_size < full.spec.vocab_size);
        // Size distribution is shape, not scale (vocab is big enough here).
        assert_eq!(full.spec.set_size_max, tenth.spec.set_size_max);
        // At extreme scales the range clamps into the vocabulary.
        let tiny = opendata(0.001);
        assert!(tiny.spec.set_size_max <= tiny.spec.vocab_size);
    }

    #[test]
    fn all_returns_four_profiles() {
        let all = DatasetProfile::all(0.05);
        let names: Vec<_> = all.iter().map(|p| p.spec.name.clone()).collect();
        assert_eq!(names, vec!["dblp", "opendata", "twitter", "wdc"]);
    }

    #[test]
    fn tiny_profile_generates_and_benchmarks() {
        let p = twitter(0.01); // 200 sets
        let c = p.generate();
        assert_eq!(c.repository.num_sets(), p.spec.num_sets);
        let b = p.benchmark(&c, 1);
        assert!(!b.is_empty());
    }

    #[test]
    fn interval_profile_produces_interval_queries() {
        let mut p = opendata(0.02); // 160 sets
                                    // Shrink intervals to the sizes a tiny corpus actually has.
        p.intervals = vec![(10, 50), (50, 1201)];
        p.queries_per_interval = 3;
        let c = p.generate();
        let b = p.benchmark(&c, 2);
        assert!(!b.is_empty());
        assert!(b.queries.iter().all(|q| q.interval < 2));
    }

    #[test]
    fn stats_shape_is_plausible() {
        let p = dblp(0.05); // 200 sets
        let c = p.generate();
        let st = c.repository.stats();
        assert!(st.avg_size >= 40.0, "avg {}", st.avg_size);
        assert!(st.max_size <= 400);
    }
}
