//! Query benchmarks (paper §VIII-A2).
//!
//! A benchmark is a collection of query sets drawn from the repository
//! itself. For strongly size-skewed corpora (OpenData, WDC) the paper
//! samples uniformly *per cardinality interval* so large queries are not
//! drowned out by the power-law mass of small sets; for DBLP and Twitter it
//! samples uniformly overall.

use koios_common::{SetId, TokenId};
use koios_embed::repository::Repository;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One benchmark query: the tokens of a sampled repository set.
#[derive(Debug, Clone)]
pub struct BenchQuery {
    /// The set the query was sampled from (searches typically want it
    /// excluded from results or simply expect it at rank 1).
    pub source: SetId,
    /// Query tokens (sorted, deduplicated — they come from a set).
    pub tokens: Vec<TokenId>,
    /// Index of the cardinality interval this query belongs to
    /// (0 for interval-less benchmarks).
    pub interval: usize,
}

/// A collection of benchmark queries grouped by cardinality interval.
#[derive(Debug, Clone, Default)]
pub struct QueryBenchmark {
    /// The interval bounds `[lo, hi)`; empty when sampling was uniform.
    pub intervals: Vec<(usize, usize)>,
    /// The queries, in interval order.
    pub queries: Vec<BenchQuery>,
}

impl QueryBenchmark {
    /// Samples `per_interval` sets uniformly from each cardinality interval
    /// `[lo, hi)`. Intervals short on eligible sets contribute what they
    /// have.
    pub fn by_intervals(
        repo: &Repository,
        intervals: &[(usize, usize)],
        per_interval: usize,
        seed: u64,
    ) -> QueryBenchmark {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut queries = Vec::new();
        for (idx, &(lo, hi)) in intervals.iter().enumerate() {
            let mut eligible: Vec<SetId> = repo
                .iter_sets()
                .filter(|(_, s)| s.len() >= lo && s.len() < hi)
                .map(|(id, _)| id)
                .collect();
            eligible.shuffle(&mut rng);
            for &id in eligible.iter().take(per_interval) {
                queries.push(BenchQuery {
                    source: id,
                    tokens: repo.set(id).to_vec(),
                    interval: idx,
                });
            }
        }
        QueryBenchmark {
            intervals: intervals.to_vec(),
            queries,
        }
    }

    /// Samples `n` sets uniformly from the whole repository (the DBLP /
    /// Twitter style benchmark).
    pub fn uniform(repo: &Repository, n: usize, seed: u64) -> QueryBenchmark {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids: Vec<SetId> = repo.iter_sets().map(|(id, _)| id).collect();
        ids.shuffle(&mut rng);
        let queries = ids
            .into_iter()
            .take(n)
            .map(|id| BenchQuery {
                source: id,
                tokens: repo.set(id).to_vec(),
                interval: 0,
            })
            .collect();
        QueryBenchmark {
            intervals: Vec::new(),
            queries,
        }
    }

    /// Queries belonging to interval `idx`.
    pub fn interval_queries(&self, idx: usize) -> impl Iterator<Item = &BenchQuery> {
        self.queries.iter().filter(move |q| q.interval == idx)
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the benchmark is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusSpec};

    fn corpus() -> Corpus {
        Corpus::generate(CorpusSpec::small(11))
    }

    #[test]
    fn interval_sampling_respects_bounds() {
        let c = corpus();
        let intervals = [(4, 10), (10, 20), (20, 41)];
        let b = QueryBenchmark::by_intervals(&c.repository, &intervals, 5, 1);
        assert!(!b.is_empty());
        for q in &b.queries {
            let (lo, hi) = intervals[q.interval];
            assert!(q.tokens.len() >= lo && q.tokens.len() < hi);
            assert_eq!(q.tokens, c.repository.set(q.source));
        }
        for idx in 0..intervals.len() {
            assert!(b.interval_queries(idx).count() <= 5);
        }
    }

    #[test]
    fn uniform_sampling_takes_n() {
        let c = corpus();
        let b = QueryBenchmark::uniform(&c.repository, 7, 2);
        assert_eq!(b.len(), 7);
        assert!(b.intervals.is_empty());
        // No duplicate source sets.
        let mut ids: Vec<_> = b.queries.iter().map(|q| q.source).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 7);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let c = corpus();
        let a = QueryBenchmark::uniform(&c.repository, 5, 3);
        let b = QueryBenchmark::uniform(&c.repository, 5, 3);
        let d = QueryBenchmark::uniform(&c.repository, 5, 4);
        let ids = |x: &QueryBenchmark| x.queries.iter().map(|q| q.source).collect::<Vec<_>>();
        assert_eq!(ids(&a), ids(&b));
        assert_ne!(ids(&a), ids(&d));
    }

    #[test]
    fn empty_interval_contributes_nothing() {
        let c = corpus();
        let b = QueryBenchmark::by_intervals(&c.repository, &[(1000, 2000)], 5, 1);
        assert!(b.is_empty());
    }
}
