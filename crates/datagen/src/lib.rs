//! Synthetic corpora and query benchmarks for the Koios experiments.
//!
//! The paper evaluates on DBLP, OpenData, Twitter and WDC (Table I). Those
//! corpora and the FastText vectors they are paired with are not available
//! offline, so this crate generates corpora that reproduce the
//! *distributional* properties the evaluation phenomena depend on
//! (DESIGN.md §3):
//!
//! * Zipfian token frequencies — long posting lists make candidate counts
//!   explode (the WDC effect, §VIII-A1);
//! * power-law set cardinalities — queries are benchmarked per cardinality
//!   interval (§VIII-A2);
//! * semantic topic structure — every token belongs to a topic cluster;
//!   sets are topically coherent mixtures, and the clustered embeddings of
//!   `koios-embed` give within-topic pairs high cosine similarity;
//! * out-of-vocabulary tokens — the paper keeps sets with ≥70% embedding
//!   coverage, i.e. up to 30% OOV elements.
//!
//! [`profiles`] provides laptop-scaled presets mirroring each paper dataset;
//! [`benchmark`] samples per-interval query workloads exactly like §VIII-A2.
//!
//! Entry points: pick a [`DatasetProfile`] (e.g.
//! [`profiles::opendata`]), call [`DatasetProfile::generate`] for the
//! [`Corpus`] and [`DatasetProfile::benchmark`] for its
//! [`QueryBenchmark`]; `koios-bench::setup` wraps exactly this sequence.

pub mod benchmark;
pub mod corpus;
pub mod profiles;
pub mod zipf;

pub use benchmark::{BenchQuery, QueryBenchmark};
pub use corpus::{Corpus, CorpusSpec};
pub use profiles::DatasetProfile;
pub use zipf::Zipf;
