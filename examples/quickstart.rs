//! Quickstart: the paper's running example (Fig. 1) end to end.
//!
//! Builds the query `Q` and candidates `C1`, `C2` from the paper's
//! introduction, gives the tokens synthetic embeddings whose synonym
//! structure mirrors the figure (BigApple ≈ NewYorkCity, Charleston ≈ SC,
//! ...), and compares vanilla, fuzzy (q-gram), greedy, and semantic
//! rankings — reproducing the punchline: only exact semantic overlap ranks
//! `C2` first.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use koios::prelude::*;
use koios_baselines::{greedy_topk, vanilla_topk};
use koios_core::overlap::semantic_overlap;
use koios_index::inverted::InvertedIndex;
use std::sync::Arc;

fn main() {
    // The collection L = {C1, C2} from Fig. 1.
    let mut builder = RepositoryBuilder::new();
    let c1 = builder.add_set(
        "C1",
        [
            "LA",
            "Blain",
            "Appleton",
            "MtPleasant",
            "Lexington",
            "WestCoast",
        ],
    );
    let c2 = builder.add_set(
        "C2",
        [
            "LA",
            "Sacramento",
            "Southern",
            "Blain",
            "SC",
            "Minnesota",
            "NewYorkCity",
        ],
    );
    let mut repo = builder.build();

    // Q = {LA, Seattle, Columbia, Blaine, BigApple, Charleston}.
    let query = repo.intern_query_mut([
        "LA",
        "Seattle",
        "Columbia",
        "Blaine",
        "BigApple",
        "Charleston",
    ]);

    // Synthetic embeddings standing in for FastText: synonym groups are the
    // semantic relations Fig. 1 draws as dashed edges.
    let embeddings = SyntheticEmbeddings::builder()
        .dimensions(48)
        .seed(3)
        .synonym_noise(0.15)
        .synonyms(
            &mut repo,
            &[
                &["Blaine", "Blain"],
                &["BigApple", "NewYorkCity"],
                &["Charleston", "SC", "Columbia"],
                &["Seattle", "WestCoast", "Sacramento"],
                &["MtPleasant", "Lexington"],
            ],
        )
        .build(&repo);
    let cosine: Arc<dyn ElementSimilarity> = Arc::new(CosineSimilarity::new(Arc::new(embeddings)));
    let alpha = 0.7;
    let index = InvertedIndex::build(&repo);

    println!("Query: {{LA, Seattle, Columbia, Blaine, BigApple, Charleston}}\n");

    // (1) Vanilla overlap: both candidates tie at 1 (only LA matches).
    println!("vanilla overlap:");
    for (set, count) in vanilla_topk(&repo, &index, &query, 2) {
        println!("  {} -> {}", repo.set_name(set), count);
    }

    // (2) Fuzzy overlap (q-gram Jaccard as the element similarity): catches
    // Blaine/Blain but not the synonyms.
    let qgram = QGramJaccard::new(&repo, 3);
    println!("\nfuzzy overlap (Jaccard on 3-grams, α = 0.5):");
    for set in [c1, c2] {
        let so = semantic_overlap(&repo, &qgram, 0.5, &query, set);
        println!("  {} -> {:.2}", repo.set_name(set), so);
    }

    // (3) Greedy matching over the semantic similarities: suboptimal.
    println!("\ngreedy semantic matching (α = {alpha}):");
    for (set, score) in greedy_topk(&repo, &index, cosine.as_ref(), &query, 2, alpha) {
        println!("  {} -> {score:.2}", repo.set_name(set));
    }

    // (4) Exact semantic overlap with Koios.
    let engine = Koios::new(&repo, Arc::clone(&cosine), KoiosConfig::new(2, alpha));
    let result = engine.search(&query);
    println!("\nKoios exact semantic overlap (α = {alpha}):");
    for hit in &result.hits {
        println!(
            "  {} -> {:.2}  (lb {:.2}, ub {:.2})",
            repo.set_name(hit.set),
            hit.score.ub(),
            hit.score.lb(),
            hit.score.ub()
        );
    }
    assert_eq!(
        result.hits[0].set, c2,
        "semantic overlap must rank C2 first"
    );
    println!(
        "\ntop-1 = {} — the semantically richer set wins, as in the paper.",
        repo.set_name(result.hits[0].set)
    );
    println!(
        "stats: {} candidates, {} stream tuples, {} exact matchings",
        result.stats.candidates, result.stats.stream_tuples, result.stats.em_full
    );
}
