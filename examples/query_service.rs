//! Serving layer demo: one owned engine, many concurrent queries.
//!
//! Generates a synthetic corpus, wraps an owned Koios engine in a
//! [`SearchService`], and pushes a mixed workload through it: a concurrent
//! batch on the worker pool, repeated queries that hit the LRU result
//! cache, a per-request `k` override, and a deadline that rejects a
//! request before it runs. Finally the same service is rebuilt over a
//! *sharded* backend ([`SearchService::new_partitioned`], paper §VI) to
//! show that routing is backend-transparent: identical scores, same API.
//!
//! ```text
//! cargo run --release --example query_service
//! ```

use koios::datagen::corpus::{Corpus, CorpusSpec};
use koios::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // One corpus, embedded once — the service owns everything via Arcs.
    let corpus = Corpus::generate(CorpusSpec::small(42));
    let repo = Arc::new(corpus.repository);
    let embeddings = Arc::new(corpus.embeddings);
    let sim: Arc<dyn ElementSimilarity> = Arc::new(CosineSimilarity::new(Arc::clone(&embeddings)));

    let service = SearchService::new(
        Arc::clone(&repo),
        sim,
        KoiosConfig::new(5, 0.8),
        ServiceConfig::new()
            .with_workers(4)
            .with_cache_capacity(256),
    );
    println!(
        "service up: {} sets, {} workers, cache capacity 256\n",
        repo.num_sets(),
        service.workers()
    );

    // A batch of queries — every 3rd one repeats, so the cache earns its keep.
    let requests: Vec<SearchRequest> = (0..24)
        .map(|i| {
            let set = SetId((i % 8) as u32);
            SearchRequest::new(repo.set(set).to_vec())
        })
        .collect();
    let responses = service.search_batch(&requests);
    let hits = responses
        .iter()
        .filter(|r| r.cache == CacheOutcome::Hit)
        .count();
    println!("batch of {}: {} served from cache", responses.len(), hits);

    // Identical resubmission: everything is a hit now.
    let again = service.search_batch(&requests);
    let hits = again
        .iter()
        .filter(|r| r.cache == CacheOutcome::Hit)
        .count();
    println!(
        "resubmitted batch: {hits}/{} served from cache",
        again.len()
    );

    // Per-request override: top-1 instead of the engine's top-5 — a
    // different cache entry, no index rebuild.
    let narrow = service.search(SearchRequest::new(repo.set(SetId(0)).to_vec()).with_k(1));
    println!(
        "k=1 override: {} hit(s), outcome {:?}",
        narrow.result.hits.len(),
        narrow.cache
    );

    // Admission control: a request whose deadline already lapsed is
    // rejected without occupying a worker.
    let dead = service.search(
        SearchRequest::new(repo.set(SetId(3)).to_vec())
            .bypassing_cache()
            .with_time_budget(Duration::ZERO),
    );
    println!(
        "zero-budget request: rejected={}, timed_out={}",
        dead.rejected, dead.result.stats.timed_out
    );

    let stats = service.stats();
    println!(
        "\nservice stats: {} queries in {} batches — {} searched, {} cache hits \
         ({:.0}% hit rate), {} rejected",
        stats.queries,
        stats.batches,
        stats.searched,
        stats.cache_hits,
        100.0 * stats.cache_hit_rate(),
        stats.rejected,
    );
    println!(
        "engine totals: {} candidates, {} exact matchings, {} No-EM certificates, \
         {:.1?} cumulative engine time",
        stats.engine.candidates,
        stats.engine.em_full,
        stats.engine.no_em,
        stats.engine.response_time(),
    );

    // Model swap? Invalidate and the next identical query recomputes.
    service.invalidate_cache();
    let fresh = service.search(SearchRequest::new(repo.set(SetId(0)).to_vec()));
    println!(
        "after invalidation: outcome {:?} (cache refilled, len {})",
        fresh.cache,
        service.cache_len()
    );

    // Scale-out: the same service API over a sharded backend (§VI). Four
    // per-shard indexes search in parallel under one shared θlb; one token
    // cache serves every shard; deadlines bound shards *and* the merge.
    let sharded = SearchService::new_partitioned(
        Arc::clone(&repo),
        Arc::new(CosineSimilarity::new(embeddings)),
        KoiosConfig::new(5, 0.8),
        4,
        0xC0FFEE,
        ServiceConfig::new()
            .with_workers(4)
            .with_cache_capacity(256),
    );
    let q = repo.set(SetId(0)).to_vec();
    let single_hits = fresh.result.hits;
    let sharded_resp = sharded.search(SearchRequest::new(q));
    // The single engine may report No-EM-certified interval scores (and
    // pick a different set among exact score ties); the partitioned merge
    // resolves everything to exact scores. Agreement check: rank by rank,
    // the sharded exact score falls inside the single engine's certified
    // interval.
    let sharded_hits = &sharded_resp.result.hits;
    let agree = single_hits.len() == sharded_hits.len()
        && single_hits.iter().zip(sharded_hits).all(|(a, b)| {
            b.score.ub() >= a.score.lb() - 1e-9 && b.score.ub() <= a.score.ub() + 1e-9
        });
    println!(
        "\nsharded service: {} partitions, top-k agrees with the single engine: {agree}",
        sharded.partitions(),
    );
}
