//! Joinable-dataset discovery — the data-lake scenario the paper's
//! introduction motivates (semantic join search, §I).
//!
//! A synthetic data lake holds table columns as sets. The query column uses
//! one naming standard ("NYC", "LA", ...); some lake columns use another
//! ("New York City", "Los Angeles", ...). Vanilla overlap search cannot see
//! the correspondence; Koios ranks the semantically joinable columns on top
//! and — via the matching it computes — also yields the cell-value mapping
//! a join would use (the SEMA-JOIN use case without the web-table corpus).
//!
//! ```text
//! cargo run --release --example joinable_columns
//! ```

use koios::prelude::*;
use koios_baselines::vanilla_topk;
use koios_core::overlap::{semantic_overlap, similarity_matrix};
use koios_index::inverted::InvertedIndex;
use koios_matching::solve_max_matching;
use std::sync::Arc;

/// City synonym table: (canonical short form, long form).
const CITIES: [(&str, &str); 8] = [
    ("NYC", "New York City"),
    ("LA", "Los Angeles"),
    ("SF", "San Francisco"),
    ("CHI", "Chicago"),
    ("PHL", "Philadelphia"),
    ("HOU", "Houston"),
    ("PHX", "Phoenix"),
    ("SEA", "Seattle"),
];

fn main() {
    let mut builder = RepositoryBuilder::new();

    // The data lake: columns from different "agencies".
    // Column A: long-form city names (semantically joinable with the query).
    let col_a = builder.add_set("cities_longform", CITIES.iter().map(|c| c.1));
    // Column B: half short forms, half unrelated values.
    let col_b = builder.add_set(
        "cities_mixed",
        ["NYC", "LA", "SF", "CHI", "n/a", "unknown", "tbd", "-"],
    );
    // Column C: unrelated product codes that happen to share "LA".
    let col_c = builder.add_set(
        "products",
        [
            "LA", "SKU-1", "SKU-2", "SKU-3", "SKU-4", "SKU-5", "SKU-6", "SKU-7",
        ],
    );
    // Column D: other US places, semantically related but not synonyms.
    let col_d = builder.add_set(
        "states",
        ["California", "Texas", "Illinois", "Arizona", "Washington"],
    );
    let mut repo = builder.build();

    // Query column: canonical short forms.
    let query = repo.intern_query_mut(CITIES.iter().map(|c| c.0));

    // Embeddings: each (short, long) pair forms a synonym cluster.
    let groups: Vec<Vec<&str>> = CITIES.iter().map(|c| vec![c.0, c.1]).collect();
    let group_refs: Vec<&[&str]> = groups.iter().map(|g| g.as_slice()).collect();
    let embeddings = SyntheticEmbeddings::builder()
        .dimensions(48)
        .seed(11)
        .synonym_noise(0.12)
        .synonyms(&mut repo, &group_refs)
        .build(&repo);
    let sim: Arc<dyn ElementSimilarity> = Arc::new(CosineSimilarity::new(Arc::new(embeddings)));
    let alpha = 0.7;

    // Vanilla join search: ranks by exact value overlap only.
    let index = InvertedIndex::build(&repo);
    println!("vanilla joinability ranking (exact value overlap):");
    for (set, count) in vanilla_topk(&repo, &index, &query, 4) {
        println!("  {:<18} overlap {}", repo.set_name(set), count);
    }

    // Semantic join search with Koios.
    let engine = Koios::new(&repo, Arc::clone(&sim), KoiosConfig::new(4, alpha));
    let result = engine.search(&query);
    println!("\nsemantic joinability ranking (Koios, α = {alpha}):");
    for hit in &result.hits {
        println!(
            "  {:<18} SO in [{:.2}, {:.2}]",
            repo.set_name(hit.set),
            hit.score.lb(),
            hit.score.ub()
        );
    }
    assert_eq!(result.hits[0].set, col_a, "long-form column must win");
    let _ = (col_b, col_c, col_d);

    // The matching itself = the cell-value join mapping.
    let m = similarity_matrix(sim.as_ref(), alpha, &query, repo.set(col_a));
    let matching = solve_max_matching(&m, None).exact().expect("exact run");
    println!(
        "\njoin mapping for {} (SO = {:.2}):",
        repo.set_name(col_a),
        semantic_overlap(&repo, sim.as_ref(), alpha, &query, col_a)
    );
    let col_tokens = repo.set(col_a);
    for (qi, cj) in matching.pairs {
        println!(
            "  {:<4} <-> {}",
            repo.token_str(query[qi as usize]),
            repo.token_str(col_tokens[cj as usize])
        );
    }
}
