//! Document search over a generated DBLP-like corpus: top-k semantically
//! similar documents (papers as word sets), comparing Koios against the
//! exhaustive baseline and showing the filter statistics of §VIII.
//!
//! ```text
//! cargo run --release --example document_search
//! ```

use koios::prelude::*;
use koios_baselines::baseline_search;
use koios_datagen::profiles;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // A small DBLP-like corpus: ~400 "papers", Zipfian vocabulary, topic
    // clusters acting as research areas.
    let profile = profiles::dblp(0.1);
    let corpus = profile.generate();
    let repo = &corpus.repository;
    let stats = repo.stats();
    println!(
        "corpus: {} documents, avg {:.0} words, {} distinct words, {:.0}% embedding coverage",
        stats.num_sets,
        stats.avg_size,
        stats.unique_elems,
        corpus.embeddings.coverage() * 100.0
    );

    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(corpus.embeddings.clone())));
    let engine = Koios::new(repo, Arc::clone(&sim), KoiosConfig::new(5, 0.8));

    // The "query document" is a corpus document; rank 1 must be itself.
    let benchmark = profile.benchmark(&corpus, 7);
    let query = &benchmark.queries[0];
    println!(
        "\nquery: document '{}' ({} words)",
        repo.set_name(query.source),
        query.tokens.len()
    );

    let t0 = Instant::now();
    let result = engine.search(&query.tokens);
    let koios_time = t0.elapsed();
    println!("\nKoios top-5 (semantic overlap, α = 0.8):");
    for (rank, hit) in result.hits.iter().enumerate() {
        println!(
            "  #{:<2} {:<12} SO in [{:.2}, {:.2}]",
            rank + 1,
            repo.set_name(hit.set),
            hit.score.lb(),
            hit.score.ub()
        );
    }
    assert_eq!(result.hits[0].set, query.source, "self must rank first");

    let s = &result.stats;
    println!("\nfilter pipeline (paper Fig. 2):");
    println!("  stream tuples        {:>8}", s.stream_tuples);
    println!("  candidate sets       {:>8}", s.candidates);
    println!(
        "  pruned in refinement {:>8}  ({:.1}%)",
        s.ub_filter_pruned + s.iub_pruned,
        s.refinement_prune_ratio() * 100.0
    );
    println!("  to post-processing   {:>8}", s.to_postprocess);
    println!("  No-EM certified      {:>8}", s.no_em);
    println!("  EM early-terminated  {:>8}", s.em_early_terminated);
    println!("  full exact matchings {:>8}", s.em_full);
    println!("  memory               {:>8.1} MiB", s.memory.total_mib());

    // The exhaustive baseline verifies every candidate.
    let t0 = Instant::now();
    let base = baseline_search(repo, Arc::clone(&sim), &query.tokens, 5, 0.8, 4, None);
    let base_time = t0.elapsed();
    println!(
        "\nbaseline: {} exact matchings, {:.1}x slower ({:.3}s vs {:.3}s), same top-5: {}",
        base.stats.em_full,
        base_time.as_secs_f64() / koios_time.as_secs_f64().max(1e-9),
        base_time.as_secs_f64(),
        koios_time.as_secs_f64(),
        base.set_ids() == result.set_ids()
    );
}
