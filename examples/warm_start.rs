//! Warm start: save a query-ready engine once, restart without a rebuild.
//!
//! Generates a small synthetic corpus, builds a sharded engine, snapshots
//! it with `koios-store`, then plays the restart: a "new process" restores
//! the engine and a whole `SearchService` from the file alone — no corpus
//! regeneration, no index build — and answers byte-identically to the
//! engine that wrote the snapshot.
//!
//! ```text
//! cargo run --release --example warm_start
//! ```

use koios::prelude::*;
use koios::store::SnapshotMeta;
use koios_datagen::corpus::{Corpus, CorpusSpec};
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ----- Cold process: generate, build, snapshot. --------------------
    let t0 = Instant::now();
    let corpus = Corpus::generate(CorpusSpec::small(7));
    let repo = Arc::new(corpus.repository.clone());
    let emb = Arc::new(corpus.embeddings.clone());
    let sim: Arc<dyn ElementSimilarity> = Arc::new(CosineSimilarity::new(Arc::clone(&emb)));
    let cold: EngineBackend =
        OwnedPartitionedKoios::new(Arc::clone(&repo), sim, KoiosConfig::new(5, 0.8), 4, 7).into();
    let cold_build = t0.elapsed();

    let path = std::env::temp_dir().join("koios-warm-start.ksnap");
    let t0 = Instant::now();
    let meta = cold.write_snapshot(&path, Some(&emb))?;
    println!(
        "cold build {:.1?}; snapshot written: {} ({} bytes, {} sections, layout {})",
        cold_build,
        path.display(),
        meta.total_bytes,
        meta.sections.len(),
        meta.layout.describe()
    );
    println!("snapshot write took {:.1?}", t0.elapsed());

    // ----- Inspect without loading (what an operator's tooling does). --
    let peek = SnapshotMeta::read(&path)?;
    println!(
        "meta-only read: format v{}, {} sets, {} tokens, embeddings: {}",
        peek.format_version, peek.num_sets, peek.vocab_size, peek.has_embeddings
    );

    // ----- "Restarted" process: warm-start engine + service. -----------
    let t0 = Instant::now();
    let (warm, _) = EngineBackend::from_snapshot(&path, KoiosConfig::new(5, 0.8))?;
    println!(
        "warm start took {:.1?} ({} partitions restored, no rebuild)",
        t0.elapsed(),
        warm.num_partitions()
    );

    let query = repo.set(SetId(12)).to_vec();
    let a = cold.search(&query);
    let b = warm.search(&query);
    assert_eq!(a.hits, b.hits, "warm hits must be byte-identical");
    println!("cold ≡ warm over {} hits:", a.hits.len());
    for hit in &a.hits {
        println!(
            "  {} -> lb {:.2}, ub {:.2}",
            warm.repository().set_name(hit.set),
            hit.score.lb(),
            hit.score.ub()
        );
    }

    // A whole serving stack from the same file, provenance included.
    let service =
        SearchService::from_snapshot(&path, KoiosConfig::new(5, 0.8), ServiceConfig::new())?;
    let resp = service.search(SearchRequest::new(query));
    assert_eq!(resp.result.hits, a.hits);
    let info = service.stats().snapshot.expect("warm-started");
    println!(
        "service warm-started from {} ({} bytes) in {:.1?}",
        info.path, info.bytes, info.load_time
    );
    Ok(())
}
