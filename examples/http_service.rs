//! Network serving demo: the whole stack behind one socket.
//!
//! Generates a synthetic corpus, wraps a sharded *mutable* engine in a
//! [`SearchService`] (persistent worker pool + submission queue), binds a
//! [`KoiosServer`] to an ephemeral loopback port, and then acts as its own
//! remote client: top-k searches over HTTP (string elements and raw token
//! ids), a per-request `k` override, a cache hit, a malformed request that
//! bounces with a 400, a live `/ingest` that mutates the served corpus
//! mid-flight (then finds the new set by searching for it), a traced
//! search whose full span tree comes back from `GET /traces`, `/stats`,
//! a Prometheus `/metrics` scrape, an EXPLAIN search whose funnel report
//! rides back with the hits, the `/healthz?full` readiness report, the
//! `/debug/engine` + `/debug/cache` introspection pair, the cooperative
//! profiler's collapsed stacks from `/debug/profile`, and `/invalidate`.
//!
//! ```text
//! cargo run --release --example http_service
//! ```

use koios::datagen::corpus::{Corpus, CorpusSpec};
use koios::prelude::*;
use std::sync::Arc;

fn main() {
    let corpus = Corpus::generate(CorpusSpec::small(42));
    let repo = Arc::new(corpus.repository);
    let embeddings = Arc::new(corpus.embeddings);

    // A mutable sharded engine: the server can ingest, snapshot and
    // reload live (the immutable constructors still work — those
    // deployments just answer 409 on the mutation routes).
    let engine = MutableEngine::partitioned(
        Arc::clone(&repo),
        Some(embeddings),
        KoiosConfig::new(5, 0.8),
        4,
        0xC0FFEE,
        cosine_factory(),
    )
    .expect("corpus has embeddings");
    let service = Arc::new(SearchService::from_mutable(
        engine,
        ServiceConfig::new()
            .with_workers(4)
            .with_cache_capacity(256),
    ));
    let server = KoiosServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind loopback");
    println!(
        "koios-net server on http://{} — {} sets, {} shards, {} workers\n",
        server.addr(),
        repo.num_sets(),
        service.partitions(),
        service.workers()
    );

    let mut client = KoiosClient::new(server.addr());

    // Health first, like any load balancer would.
    let (status, health) = client.healthz().expect("healthz");
    println!("GET /healthz -> {status} {health}");

    // A top-k search by raw token ids (the tokens of set 0).
    let tokens = repo.set(SetId(0)).to_vec();
    let body = Json::obj([(
        "tokens",
        Json::arr(tokens.iter().map(|t| Json::num(t.0 as f64))),
    )]);
    let (status, reply) = client.search(&body).expect("search");
    let hits = reply.get("hits").expect("hits").as_array().expect("array");
    println!(
        "\nPOST /search (token ids) -> {status}, {} hits:",
        hits.len()
    );
    for h in hits {
        println!(
            "  {} (set {}) score [{:.3}, {:.3}]",
            h.get("name").unwrap().as_str().unwrap(),
            h.get("set").unwrap().as_u64().unwrap(),
            h.get("lb").unwrap().as_f64().unwrap(),
            h.get("ub").unwrap().as_f64().unwrap(),
        );
    }

    // Same query again: served from the result cache.
    let (_, again) = client.search(&body).expect("search");
    println!(
        "repeat -> cache outcome {:?}",
        again.get("cache").unwrap().as_str().unwrap()
    );

    // String elements with a k override — the server interns them.
    let elements: Vec<String> = tokens
        .iter()
        .take(4)
        .map(|t| repo.token_str(*t).to_string())
        .collect();
    let narrow = Json::obj([
        ("elements", Json::arr(elements.iter().map(Json::str))),
        ("k", Json::num(1.0)),
    ]);
    let (status, reply) = client.search(&narrow).expect("search");
    println!(
        "\nPOST /search (elements, k=1) -> {status}, {} hit(s)",
        reply.get("hits").unwrap().as_array().unwrap().len()
    );

    // A malformed request bounces without hurting the connection.
    let bad = Json::obj([("tokens", Json::str("not-an-array"))]);
    let (status, err) = client.search(&bad).expect("transport ok");
    println!(
        "\nPOST /search (malformed) -> {status} {}",
        err.get("error").unwrap().as_str().unwrap()
    );

    // Live ingestion: append a set over the wire, then find it by
    // searching for its own elements. The backend hot-swaps under the
    // readers — zero downtime, and the epoch bump keys the caches so no
    // stale answer survives the mutation.
    let fresh: Vec<String> = elements.iter().take(3).cloned().collect();
    let ingest = Json::obj([(
        "ops",
        Json::arr([Json::obj([
            ("op", Json::str("insert")),
            ("name", Json::str("ingested-live")),
            ("tokens", Json::arr(fresh.iter().map(Json::str))),
        ])]),
    )]);
    let (status, outcome) = client.ingest(&ingest).expect("ingest");
    println!(
        "\nPOST /ingest -> {status}, inserted {} set(s), epoch now {}",
        outcome.get("inserted").unwrap().as_u64().unwrap(),
        outcome.get("epoch").unwrap().as_u64().unwrap(),
    );
    let (_, found) = client.search_elements(&fresh).expect("search");
    let top = found.get("hits").unwrap().as_array().unwrap();
    println!(
        "POST /search (the ingested elements) -> {} hits, best: {}",
        top.len(),
        top.first()
            .map(|h| h.get("name").unwrap().as_str().unwrap())
            .unwrap_or("<none>"),
    );

    // Request-scoped tracing: hand the server our own trace context via
    // a W3C-style `traceparent` header. The `01` sampled flag forces the
    // tail sampler to pin the trace, so the full span tree — queue wait,
    // cache probe, the executor batch with one span per shard, and the
    // paper's refine/verify/merge stages — comes back on `GET /traces`.
    let ctx = TraceContext::new(0x0DD_BA11_F00D);
    let mut traced = KoiosClient::new(server.addr()).with_traceparent(ctx.render_traceparent());
    let (_, reply) = traced.search(&narrow).expect("traced search");
    let trace_hex = reply.get("trace_id").unwrap().as_str().unwrap();
    let (status, tree) = traced.trace(ctx.trace_id).expect("trace fetch");
    let spans = tree.get("spans").unwrap().as_array().unwrap();
    println!(
        "\nGET /traces?id={trace_hex} -> {status}, retained \"{}\", {} spans:",
        tree.get("reason").unwrap().as_str().unwrap(),
        spans.len()
    );
    let parents: std::collections::HashMap<&str, Option<&str>> = spans
        .iter()
        .map(|s| {
            (
                s.get("id").unwrap().as_str().unwrap(),
                s.get("parent").and_then(|p| p.as_str()),
            )
        })
        .collect();
    for span in spans {
        let mut depth = 0usize;
        let mut cursor = span.get("parent").and_then(|p| p.as_str());
        // The root's parent is the caller's remote span: not in the map.
        while let Some(up) = cursor.and_then(|p| parents.get(p)) {
            depth += 1;
            cursor = *up;
        }
        let shard = span
            .get("shard")
            .and_then(|v| v.as_u64())
            .map(|v| format!(" shard={v}"))
            .unwrap_or_default();
        let cache = span
            .get("cache")
            .and_then(|v| v.as_str())
            .map(|v| format!(" [{v}]"))
            .unwrap_or_default();
        let micros = span.get("duration_ns").unwrap().as_f64().unwrap() / 1000.0;
        println!(
            "  {:indent$}{}{shard}{cache} ({micros:.1}us)",
            "",
            span.get("name").unwrap().as_str().unwrap(),
            indent = depth * 2
        );
    }

    // Observability and invalidation round out the operator surface.
    let (_, stats) = client.stats().expect("stats");
    println!(
        "\nGET /stats -> queries {}, searched {}, cache_hits {}, partitions {}, \
         engine_epoch {}, sets_added {}",
        stats.get("queries").unwrap().as_u64().unwrap(),
        stats.get("searched").unwrap().as_u64().unwrap(),
        stats.get("cache_hits").unwrap().as_u64().unwrap(),
        stats.get("partitions").unwrap().as_u64().unwrap(),
        stats.get("engine_epoch").unwrap().as_u64().unwrap(),
        stats.get("sets_added").unwrap().as_u64().unwrap(),
    );
    // Prometheus scrape: the same registry an operator would poll. The
    // CI smoke gate greps this output for the stage/queue/lock-wait
    // series, so keep the highlight prefixes in sync with ci.yml.
    let (status, text) = client.metrics().expect("metrics");
    let highlights = [
        "koios_stage_seconds_count",
        "koios_shard_seconds_count",
        "koios_queue_depth",
        "koios_queue_wait_seconds_count",
        "koios_lock_wait_seconds_count",
        "koios_request_seconds_count",
        "koios_trace_exemplar_ns",
    ];
    println!(
        "\nGET /metrics -> {status}, {} series lines; highlights:",
        text.lines().filter(|l| !l.starts_with('#')).count()
    );
    for line in text
        .lines()
        .filter(|l| highlights.iter().any(|p| l.starts_with(p)))
    {
        println!("  {line}");
    }

    // EXPLAIN mode: the same query with `"explain": true` brings the
    // filter→refine→verify funnel back next to the hits — how many
    // candidates the inverted index surfaced, how many each pruning
    // lemma retired, and how many reached an exact matching. The hits
    // are byte-identical to the plain search; explain is observation
    // only. (CI greps the funnel line — keep the fields in sync.)
    let explained = Json::obj([
        (
            "tokens",
            Json::arr(tokens.iter().map(|t| Json::num(t.0 as f64))),
        ),
        ("explain", Json::Bool(true)),
        ("bypass_cache", Json::Bool(true)),
    ]);
    let (status, reply) = client.search(&explained).expect("explain search");
    let funnel = reply.get("funnel").expect("explain reply carries a funnel");
    let fnum = |key: &str| funnel.get(key).unwrap().as_u64().unwrap();
    println!(
        "\nPOST /search (explain) -> {status}; funnel: candidates_discovered={} \
         ub_filter_pruned={} iub_pruned={} entered_postprocess={} no_em_certified={} \
         em_verified={} returned={}",
        fnum("candidates_discovered"),
        fnum("ub_filter_pruned"),
        fnum("iub_pruned"),
        fnum("entered_postprocess"),
        fnum("no_em_certified"),
        fnum("em_verified"),
        fnum("returned"),
    );

    // The introspection suite: deep readiness, engine/cache internals,
    // and the cooperative profiler's collapsed stacks (pipe them into
    // flamegraph.pl as-is).
    let (_, full) = client.healthz_full().expect("healthz full");
    println!(
        "\nGET /healthz?full -> ready {}, epoch {}, live_workers {}/{}, queue_depth {}",
        full.get("ready").unwrap().as_bool().unwrap(),
        full.get("epoch").unwrap().as_u64().unwrap(),
        full.get("live_workers").unwrap().as_u64().unwrap(),
        full.get("workers").unwrap().as_u64().unwrap(),
        full.get("queue_depth").unwrap().as_u64().unwrap(),
    );
    let (_, engine_dbg) = client.debug_engine().expect("debug engine");
    let sets = engine_dbg.get("sets").unwrap();
    println!(
        "GET /debug/engine -> {} live / {} tombstoned sets, vocab {}, delta_chain {}, \
         {} minhash bands",
        sets.get("live").unwrap().as_u64().unwrap(),
        sets.get("tombstoned").unwrap().as_u64().unwrap(),
        engine_dbg.get("vocab_size").unwrap().as_u64().unwrap(),
        engine_dbg.get("delta_chain_len").unwrap().as_u64().unwrap(),
        engine_dbg
            .get("minhash")
            .unwrap()
            .get("band_occupancy")
            .unwrap()
            .as_array()
            .unwrap()
            .len(),
    );
    let (_, cache_dbg) = client.debug_cache().expect("debug cache");
    let rc = cache_dbg.get("result").unwrap();
    println!(
        "GET /debug/cache -> result cache {} entr(ies) across {} stripes",
        rc.get("entries").unwrap().as_u64().unwrap(),
        rc.get("stripes").unwrap().as_array().unwrap().len(),
    );
    let (status, collapsed) = client.debug_profile_collapsed().expect("collapsed profile");
    println!("GET /debug/profile?format=collapsed -> {status}, sampled stacks:");
    for line in collapsed.lines().take(8) {
        println!("  {line}");
    }

    let (status, _) = client.invalidate().expect("invalidate");
    let (_, after) = client.search(&body).expect("search");
    println!(
        "POST /invalidate -> {status}; repeat search now a {:?}",
        after.get("cache").unwrap().as_str().unwrap()
    );
}
