//! Similarity-function pluggability (§IV): the same Koios engine runs on
//! *any* symmetric element similarity — cosine embeddings, q-gram Jaccard
//! (fuzzy overlap à la SilkMoth), edit similarity, word Jaccard, strict
//! equality (vanilla overlap) — including a user-defined one, without
//! touching any filter.
//!
//! ```text
//! cargo run --release --example plugin_similarity
//! ```

use koios::prelude::*;
use koios_common::TokenId;
use koios_embed::sim::WordJaccard;
use std::sync::Arc;

/// A custom similarity: case-insensitive equality with a prefix bonus
/// ("street names": `Main St` vs `main st.` vs `Maple Ave`).
struct PrefixSimilarity {
    strings: Vec<String>,
}

impl PrefixSimilarity {
    fn new(repo: &Repository) -> Self {
        let strings = (0..repo.vocab_size())
            .map(|i| repo.token_str(TokenId(i as u32)).to_lowercase())
            .collect();
        PrefixSimilarity { strings }
    }
}

impl ElementSimilarity for PrefixSimilarity {
    fn sim(&self, a: TokenId, b: TokenId) -> f64 {
        if a == b {
            return 1.0;
        }
        let (sa, sb) = (&self.strings[a.idx()], &self.strings[b.idx()]);
        if sa == sb {
            return 1.0;
        }
        let common = sa
            .chars()
            .zip(sb.chars())
            .take_while(|(x, y)| x == y)
            .count();
        common as f64 / sa.chars().count().max(sb.chars().count()) as f64
    }

    fn name(&self) -> &'static str {
        "prefix-similarity"
    }
}

fn main() {
    let mut builder = RepositoryBuilder::new();
    builder.add_set("clean", ["Main St", "Oak Ave", "Maple Dr", "Pine Rd"]);
    builder.add_set("dirty", ["main st.", "oak avenue", "maple dr", "willow ln"]);
    builder.add_set(
        "other",
        ["First Blvd", "Second Blvd", "Third Blvd", "Pine Rd"],
    );
    let mut repo = builder.build();
    let query = repo.intern_query_mut(["Main St", "Oak Ave", "Maple Dr", "Pine Rd"]);

    // Four stock similarities plus the custom one — all through the same
    // engine and filter stack.
    let sims: Vec<(f64, Arc<dyn ElementSimilarity>)> = vec![
        (1.0, Arc::new(EqualitySimilarity)),
        (0.4, Arc::new(QGramJaccard::new(&repo, 3))),
        (0.5, Arc::new(EditSimilarity::new(&repo))),
        (0.4, Arc::new(WordJaccard::new(&repo))),
        (0.5, Arc::new(PrefixSimilarity::new(&repo))),
    ];

    for (alpha, sim) in sims {
        let name = sim.name();
        let engine = Koios::new(&repo, sim, KoiosConfig::new(3, alpha));
        let result = engine.search(&query);
        print!("{name:<18} (α = {alpha}):");
        for hit in &result.hits {
            print!("  {}={:.2}", repo.set_name(hit.set), hit.score.ub());
        }
        println!();
        // Every similarity must put the exact-match set first.
        assert_eq!(repo.set_name(result.hits[0].set), "clean");
    }
    println!("\nall similarity functions rank the exact-match column first;");
    println!("character-based ones additionally surface the dirty duplicates.");
}
