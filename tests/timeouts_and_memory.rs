//! Operational behaviour: time budgets produce flagged partial results
//! (the paper's 2500 s query timeouts), and the memory report covers every
//! search structure of §VIII-D.

use koios::prelude::*;
use koios_datagen::corpus::{Corpus, CorpusSpec};
use std::sync::Arc;
use std::time::Duration;

fn corpus() -> Corpus {
    let mut s = CorpusSpec::small(3001);
    s.num_sets = 300;
    s.vocab_size = 800;
    Corpus::generate(s)
}

#[test]
fn zero_budget_times_out_gracefully() {
    let c = corpus();
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(c.embeddings.clone())));
    let cfg = KoiosConfig::new(5, 0.8).with_time_budget(Duration::from_nanos(1));
    let engine = Koios::new(&c.repository, sim, cfg);
    let query = c.repository.set(SetId(0)).to_vec();
    let res = engine.search(&query);
    assert!(res.stats.timed_out, "nanosecond budget must time out");
    // Partial results are still structurally sound (no duplicates, sorted).
    let mut ids = res.set_ids();
    let n = ids.len();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), n);
}

#[test]
fn generous_budget_never_times_out() {
    let c = corpus();
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(c.embeddings.clone())));
    let cfg = KoiosConfig::new(5, 0.8).with_time_budget(Duration::from_secs(300));
    let engine = Koios::new(&c.repository, sim, cfg);
    let query = c.repository.set(SetId(1)).to_vec();
    let res = engine.search(&query);
    assert!(!res.stats.timed_out);
    assert_eq!(res.hits.len(), 5);
}

#[test]
fn memory_report_covers_both_phases() {
    let c = corpus();
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(c.embeddings.clone())));
    let engine = Koios::new(&c.repository, sim, KoiosConfig::new(5, 0.8));
    let query = c.repository.set(SetId(2)).to_vec();
    let res = engine.search(&query);
    let names: Vec<&str> = res.stats.memory.iter().map(|(n, _)| n).collect();
    for expected in [
        "token stream",
        "candidate states",
        "ub buckets",
        "top-k lb list",
        "postprocess states",
        "ub priority queue",
        "top-k ub list",
        "inverted index",
    ] {
        assert!(names.contains(&expected), "missing structure: {expected}");
    }
    assert!(res.stats.memory.total() > 0);
    // The rendered report mentions a total line.
    assert!(format!("{}", res.stats.memory).contains("total"));
}

#[test]
fn stats_are_internally_consistent() {
    let c = corpus();
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(c.embeddings.clone())));
    let engine = Koios::new(&c.repository, sim, KoiosConfig::new(5, 0.8));
    let query = c.repository.set(SetId(3)).to_vec();
    let s = engine.search(&query).stats;
    // Every candidate is pruned, survives to post-processing, or was a
    // discovery-time tombstone.
    assert_eq!(
        s.candidates,
        s.ub_filter_pruned + s.iub_pruned + s.to_postprocess,
        "candidate accounting must balance"
    );
    // Post-processing dispositions cannot exceed the sets that entered.
    assert!(
        s.no_em + s.em_early_terminated + s.em_full + s.postprocess_ub_pruned
            <= s.to_postprocess + s.em_full /* re-verification never happens */
    );
    assert!(s.response_time() >= s.refine_time);
}
