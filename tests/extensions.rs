//! Extension features: the MinHash-LSH token index (§IV's pluggable index),
//! the many-to-1 overlap (§X future work), and result auditing.

use koios::prelude::*;
use koios_core::audit::{audit_result, AuditOutcome};
use koios_core::many_to_one::{bounded_many_to_one_overlap, many_to_one_overlap};
use koios_core::overlap::semantic_overlap;
use koios_core::SharedTheta;
use koios_datagen::corpus::{Corpus, CorpusSpec};
use koios_index::minhash::{vocabulary_grams, MinHashIndex, MinHashKnn, MinHashParams};
use std::sync::Arc;

fn corpus(seed: u64) -> Corpus {
    let mut s = CorpusSpec::small(seed);
    s.num_sets = 120;
    s.vocab_size = 500;
    Corpus::generate(s)
}

#[test]
fn koios_over_minhash_source_matches_exact_scan() {
    // With b=32, r=4 the LSH recall at J >= 0.6 is ≈1; the full engine over
    // the LSH source must return the same top-k as over the exact scan.
    let c = corpus(2001);
    let repo = &c.repository;
    let sim_qg = Arc::new(QGramJaccard::new(repo, 3));
    let sim: Arc<dyn ElementSimilarity> = sim_qg.clone();
    let mut cfg = KoiosConfig::new(5, 0.6);
    cfg.no_em_filter = false;
    let engine = Koios::new(repo, sim.clone(), cfg);

    let grams = vocabulary_grams(repo, 3);
    let lsh = Arc::new(MinHashIndex::build(&grams, MinHashParams::default()));

    for probe in [0u32, 33, 77] {
        let query = repo.set(SetId(probe)).to_vec();
        let exact = engine.search(&query);
        let source = MinHashKnn::new(Arc::clone(&lsh), Arc::clone(&sim_qg), query.clone(), 0.6);
        let via_lsh = engine.search_with_source(query.clone(), source, &SharedTheta::new());
        assert_eq!(exact.hits.len(), via_lsh.hits.len(), "probe {probe}");
        for (a, b) in exact.hits.iter().zip(&via_lsh.hits) {
            assert_eq!(a.set, b.set, "probe {probe}");
            assert!((a.score.ub() - b.score.ub()).abs() < 1e-9);
        }
        // And the result is valid per the auditor.
        assert_eq!(
            audit_result(repo, sim.as_ref(), 0.6, 5, &query, &via_lsh),
            AuditOutcome::Valid
        );
    }
}

#[test]
fn many_to_one_upper_bounds_def1_everywhere() {
    let c = corpus(2002);
    let repo = &c.repository;
    let sim = CosineSimilarity::new(Arc::new(c.embeddings.clone()));
    let query = repo.set(SetId(5)).to_vec();
    for (id, _) in repo.iter_sets().take(40) {
        let one = semantic_overlap(repo, &sim, 0.8, &query, id);
        let many = many_to_one_overlap(repo, &sim, 0.8, &query, id);
        assert!(
            many >= one - 1e-9,
            "set {id:?}: m21 {many} < one-to-one {one}"
        );
        let cap2 = bounded_many_to_one_overlap(repo, &sim, 0.8, &query, id, 2);
        assert!(cap2 >= one - 1e-9 && cap2 <= many + 1e-9);
    }
}

#[test]
fn audit_catches_paper_mode_if_it_ever_misfires() {
    // PaperGreedy is expected-exact on clustered embeddings; the auditor
    // double-checks a real search end to end.
    let c = corpus(2003);
    let repo = &c.repository;
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(c.embeddings.clone())));
    let engine = Koios::new(
        repo,
        sim.clone(),
        KoiosConfig::new(4, 0.8).with_ub_mode(UbMode::PaperGreedy),
    );
    let query = repo.set(SetId(50)).to_vec();
    let res = engine.search(&query);
    assert_eq!(
        audit_result(repo, sim.as_ref(), 0.8, 4, &query, &res),
        AuditOutcome::Valid
    );
}
