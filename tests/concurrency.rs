//! Concurrency determinism suite: parallel execution must be
//! *observationally identical* to sequential execution.
//!
//! The shard executor (PR 7) runs every partitioned query's shard tasks on
//! one shared process-wide pool, and both caches are striped across
//! independently locked segments — three places where a race could
//! silently change results. These tests hammer all of them from 8 threads
//! and assert byte-identical hits and scores against a single-threaded
//! reference run, plus torn-free invalidation when the token-cache
//! generation is bumped mid-search.

use koios::datagen::corpus::{Corpus, CorpusSpec};
use koios::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const THREADS: usize = 8;

fn corpus(seed: u64) -> Corpus {
    // Deliberately compact: the suite runs hundreds of searches across 8
    // threads, and determinism shows at any scale. Small sets keep the
    // cubic Hungarian verification cheap so the whole suite stays fast
    // in debug builds.
    let mut spec = CorpusSpec::small(seed);
    spec.num_sets = 60;
    spec.vocab_size = 240;
    spec.clusters = 30;
    spec.set_size_min = 3;
    spec.set_size_max = 10;
    Corpus::generate(spec)
}

/// A mixed query workload: whole sets, truncated sets, and a cross-set
/// splice — enough shape variety that refinement, verification and both
/// caches all get exercised.
fn queries(repo: &Repository) -> Vec<Vec<TokenId>> {
    let mut qs = Vec::new();
    for i in 0..4 {
        let set = repo.set(SetId(i * 7 % repo.num_sets() as u32)).to_vec();
        qs.push(set.clone());
        if set.len() > 2 {
            qs.push(set[..set.len() / 2].to_vec());
        }
        let other = repo.set(SetId((i * 7 + 3) % repo.num_sets() as u32));
        let mut spliced = set;
        spliced.extend_from_slice(&other[..other.len().min(3)]);
        qs.push(spliced);
    }
    qs
}

fn backends(c: &Corpus) -> Vec<(&'static str, EngineBackend)> {
    let repo = Arc::new(c.repository.clone());
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(c.embeddings.clone())));
    let cfg = KoiosConfig::new(5, 0.8).with_token_cache(Arc::new(TokenKnnCache::new(8 << 20)));
    vec![
        (
            "single",
            OwnedKoios::new(Arc::clone(&repo), Arc::clone(&sim), cfg.clone()).into(),
        ),
        (
            "partitioned",
            OwnedPartitionedKoios::new(repo, sim, cfg, 4, 0xC0FFEE).into(),
        ),
    ]
}

/// 8 threads × repeated mixed queries over both backend variants: every
/// hit list (sets, score bounds, order) must be byte-identical to a
/// single-threaded reference run over the same backend. On the
/// partitioned variant this drives the shared shard executor from many
/// submitters at once; on both it churns the striped token cache.
#[test]
fn hammer_is_byte_identical_to_sequential_reference() {
    let c = corpus(7001);
    let qs = queries(&c.repository);
    for (name, backend) in backends(&c) {
        // Reference pass, single-threaded. Token-cache completeness makes
        // replays byte-identical, so warming it here changes nothing.
        let reference: Vec<Vec<Hit>> = qs.iter().map(|q| backend.search(q).hits).collect();
        assert!(
            reference.iter().any(|hits| !hits.is_empty()),
            "{name}: workload must produce hits"
        );
        let backend = &backend;
        let reference = &reference;
        let qs = &qs;
        std::thread::scope(|sc| {
            for t in 0..THREADS {
                sc.spawn(move || {
                    // Stagger starting offsets so threads collide on
                    // different queries in different orders.
                    for round in 0..2 {
                        for (i, q) in qs.iter().enumerate().skip((t + round) % qs.len()) {
                            let hits = backend.search(q).hits;
                            assert_eq!(
                                hits, reference[i],
                                "{name}: thread {t} round {round} query {i} diverged"
                            );
                        }
                    }
                });
            }
        });
    }
}

/// Bumping the token-cache generation *while* 8 threads are searching must
/// never produce a stale or torn result: every search still returns the
/// reference answer, in-flight inserts of the old world are rejected (not
/// resurrected), and the cache's byte accounting survives the churn.
#[test]
fn generation_bump_during_search_never_tears_results() {
    let c = corpus(7002);
    let repo = Arc::new(c.repository.clone());
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(c.embeddings.clone())));
    let cache = Arc::new(TokenKnnCache::new(8 << 20));
    let backend: EngineBackend = OwnedPartitionedKoios::new(
        Arc::clone(&repo),
        Arc::clone(&sim),
        KoiosConfig::new(5, 0.8).with_token_cache(Arc::clone(&cache)),
        4,
        0xC0FFEE,
    )
    .into();
    // Reference from an uncached engine of the *same partitioned shape*:
    // immune to any cache behaviour, while its merge resolves scores
    // identically (a single engine may legitimately report No-EM-certified
    // hits as intervals where the partitioned merge resolves them).
    let uncached: EngineBackend = OwnedPartitionedKoios::new(
        Arc::clone(&repo),
        Arc::clone(&sim),
        KoiosConfig::new(5, 0.8),
        4,
        0xC0FFEE,
    )
    .into();
    let qs = queries(&repo);
    let reference: Vec<Vec<Hit>> = qs.iter().map(|q| uncached.search(q).hits).collect();

    let stop = AtomicBool::new(false);
    let backend = &backend;
    let reference = &reference;
    let qs = &qs;
    std::thread::scope(|sc| {
        let stop = &stop;
        let bumper_cache = Arc::clone(&cache);
        sc.spawn(move || {
            // Invalidate continuously while the searchers run.
            while !stop.load(Ordering::Relaxed) {
                bumper_cache.bump_generation();
                std::thread::yield_now();
            }
        });
        let mut searchers = Vec::new();
        for t in 0..THREADS {
            searchers.push(sc.spawn(move || {
                for (i, q) in qs.iter().enumerate() {
                    let hits = backend.search(q).hits;
                    assert_eq!(
                        hits, reference[i],
                        "thread {t} query {i}: stale or torn result"
                    );
                }
            }));
        }
        // Collect first, stop the bumper, THEN propagate panics: unwinding
        // before the store would leave the bumper spinning and the scope
        // joining it forever — the hang would mask the real failure.
        let outcomes: Vec<_> = searchers.into_iter().map(|s| s.join()).collect();
        stop.store(true, Ordering::Relaxed);
        for o in outcomes {
            o.expect("searcher panicked");
        }
    });

    // Post-churn invariants: accounting never went negative or over
    // budget, and probes always resolved to exactly one outcome.
    let snap = cache.snapshot();
    assert!(snap.bytes <= snap.budget_bytes);
    let usage_bytes: usize = cache.stripe_usage().iter().map(|&(_, b)| b).sum();
    assert_eq!(
        usage_bytes, snap.bytes,
        "stripe sums match the global total"
    );
    assert!(snap.counters.invalidations + snap.counters.rejected_inserts > 0);
}

/// The full service stack under 8-thread request pressure: striped result
/// cache, striped token cache and the shard executor together. Every
/// response must carry the reference hits whatever its cache outcome, and
/// the service counters must add up exactly.
#[test]
fn service_under_concurrent_load_stays_deterministic() {
    let c = corpus(7003);
    let repo = Arc::new(c.repository.clone());
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(c.embeddings.clone())));
    let service = SearchService::new_partitioned(
        Arc::clone(&repo),
        sim,
        KoiosConfig::new(5, 0.8),
        4,
        0xC0FFEE,
        ServiceConfig::new()
            .with_workers(THREADS)
            .with_cache_capacity(64),
    );
    let qs = queries(&repo);
    let reference: Vec<Vec<Hit>> = qs
        .iter()
        .map(|q| service.backend().search(q).hits)
        .collect();

    let service = &service;
    let reference = &reference;
    let qs = &qs;
    std::thread::scope(|sc| {
        for t in 0..THREADS {
            sc.spawn(move || {
                for (i, q) in qs.iter().enumerate() {
                    let resp = service.search(SearchRequest::new(q.clone()));
                    assert!(!resp.rejected);
                    assert!(
                        matches!(resp.cache, CacheOutcome::Hit | CacheOutcome::Miss),
                        "thread {t} query {i}: unexpected outcome {:?}",
                        resp.cache
                    );
                    assert_eq!(resp.result.hits, reference[i], "thread {t} query {i}");
                }
            });
        }
    });

    let st = service.stats();
    let total = (THREADS * qs.len()) as u64;
    assert_eq!(st.queries, total);
    assert_eq!(st.cache_hits + st.searched, total, "every query resolved");
    assert!(
        st.cache_hits > 0,
        "repeats must hit the striped result cache"
    );
    // Result-cache counters agree with the outcomes the callers saw.
    assert_eq!(st.cache.hits, st.cache_hits);
    assert_eq!(st.cache.misses, st.searched);
}
