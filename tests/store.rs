//! Snapshot persistence: robustness and warm ≡ cold equivalence.
//!
//! The warm-start contract has two halves. Correctness: an engine restored
//! from a snapshot must return **byte-identical** hits to the engine that
//! wrote it, for every `k`/`α` served on top of the same state, on both
//! backend layouts. Robustness: no corrupt input — truncation, flipped
//! bits, alien magic, future versions, cross-layout loads — may panic the
//! loader; every failure is a typed `StoreError`.

use koios::prelude::*;
use koios::store::snapshot::{SnapshotMeta, StoreError};
use koios_datagen::corpus::{Corpus, CorpusSpec};
use std::path::PathBuf;
use std::sync::Arc;

fn corpus(seed: u64) -> Corpus {
    let mut s = CorpusSpec::small(seed);
    s.num_sets = 150;
    s.vocab_size = 600;
    s.clusters = 80;
    Corpus::generate(s)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("koios-store-integration");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Builds a cosine single + partitioned backend over one corpus and writes
/// a snapshot of each; returns (repo, embeddings, single, parted, paths).
fn setup(
    seed: u64,
    single_name: &str,
    parted_name: &str,
) -> (
    Arc<Repository>,
    Arc<koios::embed::vectors::Embeddings>,
    EngineBackend,
    EngineBackend,
    PathBuf,
    PathBuf,
) {
    let c = corpus(seed);
    let repo = Arc::new(c.repository.clone());
    let emb = Arc::new(c.embeddings.clone());
    let sim: Arc<dyn ElementSimilarity> = Arc::new(CosineSimilarity::new(Arc::clone(&emb)));
    let cfg = KoiosConfig::new(5, 0.8);
    let single: EngineBackend =
        OwnedKoios::new(Arc::clone(&repo), Arc::clone(&sim), cfg.clone()).into();
    let parted: EngineBackend =
        OwnedPartitionedKoios::new(Arc::clone(&repo), sim, cfg, 4, 99).into();
    let spath = tmp(single_name);
    let ppath = tmp(parted_name);
    single.write_snapshot(&spath, Some(&emb)).unwrap();
    parted.write_snapshot(&ppath, Some(&emb)).unwrap();
    (repo, emb, single, parted, spath, ppath)
}

#[test]
fn warm_equals_cold_across_k_and_alpha() {
    let (repo, _, single, parted, spath, ppath) = setup(41, "eq-single.ksnap", "eq-parted.ksnap");
    let (warm_single, _) = EngineBackend::from_snapshot(&spath, KoiosConfig::new(5, 0.8)).unwrap();
    let (warm_parted, _) = EngineBackend::from_snapshot(&ppath, KoiosConfig::new(5, 0.8)).unwrap();
    assert_eq!(warm_parted.num_partitions(), 4);

    // Seeded queries: real set contents plus a cross-set mixture.
    let mut queries: Vec<Vec<TokenId>> = (0..6).map(|i| repo.set(SetId(i * 17)).to_vec()).collect();
    let mixed: Vec<TokenId> = repo
        .set(SetId(3))
        .iter()
        .chain(repo.set(SetId(77)))
        .copied()
        .collect();
    queries.push(
        repo.intern_query(
            mixed
                .iter()
                .map(|&t| repo.token_str(t).to_string())
                .collect::<Vec<_>>(),
        ),
    );

    for k in [1usize, 3, 8] {
        for alpha in [0.6, 0.8, 0.95] {
            let cfg = KoiosConfig::new(k, alpha);
            for q in &queries {
                let cold = single.with_config(cfg.clone()).search(q);
                let warm = warm_single.with_config(cfg.clone()).search(q);
                assert_eq!(warm.hits, cold.hits, "single k={k} α={alpha}");
                let cold_p = parted.with_config(cfg.clone()).search(q);
                let warm_p = warm_parted.with_config(cfg.clone()).search(q);
                assert_eq!(warm_p.hits, cold_p.hits, "parted k={k} α={alpha}");
            }
        }
    }
}

#[test]
fn sharded_snapshot_cannot_cross_load_into_single_backend() {
    let (_, _, _, _, spath, ppath) = setup(42, "cross-single.ksnap", "cross-parted.ksnap");
    match OwnedKoios::from_snapshot(&ppath, KoiosConfig::new(3, 0.8)) {
        Err(StoreError::LayoutMismatch { expected, found }) => {
            assert_eq!(expected, "single");
            assert!(found.contains("partitioned(4)"), "{found}");
        }
        Err(other) => panic!("wrong error: {other}"),
        Ok(_) => panic!("sharded snapshot must not restore a single engine"),
    }
    match OwnedPartitionedKoios::from_snapshot(&spath, KoiosConfig::new(3, 0.8)) {
        Err(StoreError::LayoutMismatch { expected, .. }) => assert_eq!(expected, "partitioned"),
        Err(other) => panic!("wrong error: {other}"),
        Ok(_) => panic!("single snapshot must not restore a partitioned engine"),
    }
}

#[test]
fn truncated_files_fail_with_typed_errors() {
    let (_, _, _, _, spath, _) = setup(43, "trunc-single.ksnap", "trunc-parted.ksnap");
    let bytes = std::fs::read(&spath).unwrap();
    // Cut points across every structural region: empty file, mid-magic,
    // mid-header, mid-table, mid-payload, one byte short.
    let cuts = [0usize, 4, 12, 16, 40, bytes.len() / 2, bytes.len() - 1];
    for &cut in &cuts {
        let path = tmp("truncated.ksnap");
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = match koios::store::read_snapshot(&path) {
            Err(e) => e,
            Ok(_) => panic!("cut at {cut} must not parse"),
        };
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. }
                    | StoreError::BadMagic
                    | StoreError::Io(_)
                    | StoreError::Malformed(_)
            ),
            "cut {cut}: unexpected error {err}"
        );
        assert!(
            SnapshotMeta::read(&path).is_err(),
            "meta read must also fail at cut {cut}"
        );
    }
}

#[test]
fn every_single_bit_flip_is_caught_without_panicking() {
    // A small snapshot so exhaustive byte-flipping stays fast.
    let mut b = RepositoryBuilder::new();
    b.add_set("s0", ["LA", "Blain", "SC"]);
    b.add_set("s1", ["LA", "Appleton"]);
    let repo = Arc::new(b.build());
    let engine: EngineBackend = OwnedKoios::new(
        Arc::clone(&repo),
        Arc::new(EqualitySimilarity),
        KoiosConfig::new(1, 0.9),
    )
    .into();
    let path = tmp("flip.ksnap");
    engine.write_snapshot(&path, None).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    // Payload region starts after header + table; every payload bit is
    // covered by a section CRC.
    let meta = SnapshotMeta::read(&path).unwrap();
    let payload_start = meta.sections.iter().map(|s| s.offset).min().unwrap() as usize;

    let mut payload_flips = 0;
    let mut payload_caught = 0;
    for pos in 0..bytes.len() {
        let mut flipped = bytes.clone();
        flipped[pos] ^= 0x80;
        let fpath = tmp("flipped.ksnap");
        std::fs::write(&fpath, &flipped).unwrap();
        // Never a panic; header/table damage may surface as any typed
        // error, payload damage must be a checksum mismatch.
        let result = koios::store::read_snapshot(&fpath);
        if pos >= payload_start {
            payload_flips += 1;
            match result {
                Err(StoreError::ChecksumMismatch { .. }) => payload_caught += 1,
                Err(_) => payload_caught += 1, // e.g. damaged meta decoded first
                Ok(_) => panic!("payload flip at byte {pos} went undetected"),
            }
        } else {
            assert!(result.is_err(), "header/table flip at {pos} undetected");
        }
    }
    assert!(payload_flips > 0 && payload_caught == payload_flips);
}

#[test]
fn flipped_checksum_byte_is_a_checksum_mismatch() {
    let (_, _, _, _, spath, _) = setup(44, "crc-single.ksnap", "crc-parted.ksnap");
    let meta = SnapshotMeta::read(&spath).unwrap();
    let bytes = std::fs::read(&spath).unwrap();
    // Flip one byte in the middle of each section's payload.
    for section in &meta.sections {
        let mut damaged = bytes.clone();
        let pos = (section.offset + section.len / 2) as usize;
        damaged[pos] ^= 0xFF;
        let path = tmp("crc-damaged.ksnap");
        std::fs::write(&path, &damaged).unwrap();
        match koios::store::read_snapshot(&path) {
            Err(StoreError::ChecksumMismatch { kind }) => {
                assert_eq!(kind, section.kind, "wrong section blamed")
            }
            Err(other) => panic!("{:?} flip: wrong error {other}", section.kind),
            Ok(_) => panic!("{:?} flip went undetected", section.kind),
        }
    }
}

#[test]
fn wrong_magic_and_future_version_are_rejected() {
    let (_, _, _, _, spath, _) = setup(45, "hdr-single.ksnap", "hdr-parted.ksnap");
    let bytes = std::fs::read(&spath).unwrap();

    let mut alien = bytes.clone();
    alien[..8].copy_from_slice(b"NOTKOIOS");
    let path = tmp("alien.ksnap");
    std::fs::write(&path, &alien).unwrap();
    assert!(matches!(
        koios::store::read_snapshot(&path),
        Err(StoreError::BadMagic)
    ));
    assert!(matches!(
        SnapshotMeta::read(&path),
        Err(StoreError::BadMagic)
    ));

    let mut future = bytes.clone();
    future[8..12].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&path, &future).unwrap();
    assert!(matches!(
        koios::store::read_snapshot(&path),
        Err(StoreError::UnsupportedVersion(99))
    ));

    // Arbitrary garbage of plausible length.
    let garbage: Vec<u8> = (0..4096u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
        .collect();
    std::fs::write(&path, &garbage).unwrap();
    assert!(koios::store::read_snapshot(&path).is_err());
}

#[test]
fn service_warm_start_round_trips_over_snapshot() {
    use koios::service::{SearchRequest, SearchService, ServiceConfig};
    let (repo, _, _, _, _, ppath) = setup(46, "svc-single.ksnap", "svc-parted.ksnap");
    let warm = SearchService::from_snapshot(
        &ppath,
        KoiosConfig::new(4, 0.8),
        ServiceConfig::new().with_workers(2),
    )
    .unwrap();
    assert_eq!(warm.partitions(), 4);
    let info = warm.stats().snapshot.expect("provenance recorded");
    assert_eq!(info.num_sets, repo.num_sets());
    assert!(info.bytes > 0);

    // Service answers equal direct backend answers on the restored state.
    let q = repo.set(SetId(10)).to_vec();
    let direct = warm.backend().search(&q);
    let served = warm.search(SearchRequest::new(q));
    assert_eq!(served.result.hits, direct.hits);
}
