//! Partitioned search must return the same top-k scores as a single-engine
//! search regardless of the partition count (paper §VI: a shared global
//! `θlb` makes partition-local pruning globally sound).

use koios::prelude::*;
use koios_datagen::corpus::{Corpus, CorpusSpec};
use std::sync::Arc;

const EPS: f64 = 1e-9;

fn corpus(seed: u64) -> Corpus {
    let mut s = CorpusSpec::small(seed);
    s.num_sets = 180;
    s.vocab_size = 700;
    s.clusters = 90;
    Corpus::generate(s)
}

#[test]
fn partition_counts_agree_on_scores() {
    let c = corpus(900);
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(c.embeddings.clone())));
    let query = c.repository.set(SetId(8)).to_vec();
    let mut cfg = KoiosConfig::new(6, 0.8);
    cfg.no_em_filter = false; // exact scores from the single engine
    let single = Koios::new(&c.repository, sim.clone(), cfg.clone()).search(&query);
    let reference: Vec<f64> = single
        .hits
        .iter()
        .map(|h| h.score.exact().unwrap())
        .collect();
    for parts in [1usize, 2, 5, 10, 32] {
        let engine = PartitionedKoios::new(
            &c.repository,
            sim.clone(),
            KoiosConfig::new(6, 0.8),
            parts,
            0xBEEF,
        );
        let res = engine.search(&query);
        let scores: Vec<f64> = res.hits.iter().map(|h| h.score.exact().unwrap()).collect();
        assert_eq!(scores.len(), reference.len(), "partitions={parts}");
        for (a, b) in scores.iter().zip(&reference) {
            assert!(
                (a - b).abs() < EPS,
                "partitions={parts}: {scores:?} vs {reference:?}"
            );
        }
    }
}

#[test]
fn partitioned_handles_k_larger_than_partition_yield() {
    // With many partitions most hold few (or zero) relevant sets; merging
    // must still assemble the global top-k.
    let c = corpus(901);
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(c.embeddings.clone())));
    let query = c.repository.set(SetId(40)).to_vec();
    let engine =
        PartitionedKoios::new(&c.repository, sim.clone(), KoiosConfig::new(12, 0.8), 40, 7);
    let res = engine.search(&query);
    assert!(res.hits.len() <= 12);
    assert!(!res.hits.is_empty());
    for w in res.hits.windows(2) {
        assert!(w[0].score.ub() + EPS >= w[1].score.ub());
    }
}

/// Regression (merge-deadline fix): a partitioned search whose budget has
/// already expired must perform **zero** exact verifications — shard-side
/// or merge-side — while reporting the timeout honestly.
#[test]
fn expired_budget_runs_no_exact_verification() {
    let c = corpus(903);
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(c.embeddings.clone())));
    let query = c.repository.set(SetId(5)).to_vec();
    let engine = PartitionedKoios::new(
        &c.repository,
        sim.clone(),
        KoiosConfig::new(6, 0.8).with_time_budget(std::time::Duration::ZERO),
        4,
        7,
    );
    let res = engine.search(&query);
    assert!(res.stats.timed_out);
    assert_eq!(res.stats.em_full, 0, "expired budget must not verify");

    // Same through the absolute-deadline entry point serving layers use.
    let engine = PartitionedKoios::new(&c.repository, sim, KoiosConfig::new(6, 0.8), 4, 7);
    let expired = std::time::Instant::now() - std::time::Duration::from_millis(1);
    let res = engine.search_with_deadline(&query, Some(expired));
    assert!(res.stats.timed_out);
    assert_eq!(res.stats.em_full, 0);
}

/// The absolute-deadline entry point with a generous deadline is exact and
/// agrees with the budget-free search.
#[test]
fn generous_deadline_matches_unbounded_search() {
    let c = corpus(904);
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(c.embeddings.clone())));
    let query = c.repository.set(SetId(9)).to_vec();
    let engine = PartitionedKoios::new(&c.repository, sim, KoiosConfig::new(6, 0.8), 5, 7);
    let free = engine.search(&query);
    let far = std::time::Instant::now() + std::time::Duration::from_secs(600);
    let bounded = engine.search_with_deadline(&query, Some(far));
    assert!(!bounded.stats.timed_out);
    assert_eq!(free.hits.len(), bounded.hits.len());
    for (a, b) in free.hits.iter().zip(&bounded.hits) {
        assert!((a.score.ub() - b.score.ub()).abs() < EPS);
    }
}

#[test]
fn partition_seed_changes_sharding_not_results() {
    let c = corpus(902);
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(c.embeddings.clone())));
    let query = c.repository.set(SetId(3)).to_vec();
    let r1 = PartitionedKoios::new(&c.repository, sim.clone(), KoiosConfig::new(5, 0.8), 6, 1)
        .search(&query);
    let r2 = PartitionedKoios::new(&c.repository, sim.clone(), KoiosConfig::new(5, 0.8), 6, 2)
        .search(&query);
    let s1: Vec<f64> = r1.hits.iter().map(|h| h.score.exact().unwrap()).collect();
    let s2: Vec<f64> = r2.hits.iter().map(|h| h.score.exact().unwrap()).collect();
    assert_eq!(s1.len(), s2.len());
    for (a, b) in s1.iter().zip(&s2) {
        assert!((a - b).abs() < EPS);
    }
}
