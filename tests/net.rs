//! End-to-end tests for the `koios-net` HTTP front-end: a remote client
//! must get byte-for-byte the scores an in-process `SearchService::search`
//! call produces, on either engine backend; framing and payload errors
//! must answer clean 4xx JSON instead of dropping the connection silently.

use koios::datagen::corpus::{Corpus, CorpusSpec};
use koios::net::client::KoiosClient;
use koios::net::server::KoiosServer;
use koios::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn corpus_parts() -> (Arc<Repository>, Arc<dyn ElementSimilarity>) {
    let corpus = Corpus::generate(CorpusSpec::small(11));
    let repo = Arc::new(corpus.repository);
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(corpus.embeddings)));
    (repo, sim)
}

fn single_service(repo: &Arc<Repository>, sim: &Arc<dyn ElementSimilarity>) -> SearchService {
    SearchService::new(
        Arc::clone(repo),
        Arc::clone(sim),
        KoiosConfig::new(5, 0.8),
        ServiceConfig::new().with_workers(2).with_cache_capacity(64),
    )
}

fn partitioned_service(repo: &Arc<Repository>, sim: &Arc<dyn ElementSimilarity>) -> SearchService {
    SearchService::new_partitioned(
        Arc::clone(repo),
        Arc::clone(sim),
        KoiosConfig::new(5, 0.8),
        4,
        13,
        ServiceConfig::new().with_workers(2).with_cache_capacity(64),
    )
}

/// The acceptance criterion of the subsystem: an HTTP client runs a top-k
/// search end-to-end against a server backed by *either* `EngineBackend`
/// variant and sees scores identical to calling the service in-process.
#[test]
fn http_search_matches_in_process_on_both_backends() {
    let (repo, sim) = corpus_parts();
    for (label, service) in [
        ("single", single_service(&repo, &sim)),
        ("partitioned", partitioned_service(&repo, &sim)),
    ] {
        let service = Arc::new(service);
        let server = KoiosServer::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let mut client = KoiosClient::new(server.addr());

        for set in 0..6u32 {
            let tokens = repo.set(SetId(set)).to_vec();
            let in_process = service
                .search(SearchRequest::new(tokens.clone()).bypassing_cache())
                .result;
            let body = Json::obj([
                (
                    "tokens",
                    Json::arr(tokens.iter().map(|t| Json::num(t.0 as f64))),
                ),
                ("bypass_cache", Json::Bool(true)),
            ]);
            let (status, reply) = client.search(&body).unwrap();
            assert_eq!(status, 200, "{label}: {reply}");
            let hits = reply.get("hits").unwrap().as_array().unwrap();
            assert_eq!(hits.len(), in_process.hits.len(), "{label} set {set}");
            for (wire, want) in hits.iter().zip(&in_process.hits) {
                assert_eq!(
                    wire.get("set").unwrap().as_u64(),
                    Some(want.set.0 as u64),
                    "{label} set {set}"
                );
                assert_eq!(
                    wire.get("name").unwrap().as_str(),
                    Some(repo.set_name(want.set)),
                    "{label} set {set}"
                );
                let lb = wire.get("lb").unwrap().as_f64().unwrap();
                let ub = wire.get("ub").unwrap().as_f64().unwrap();
                assert!(
                    (lb - want.score.lb()).abs() < 1e-9 && (ub - want.score.ub()).abs() < 1e-9,
                    "{label} set {set}: wire ({lb}, {ub}) != engine ({}, {})",
                    want.score.lb(),
                    want.score.ub()
                );
            }
            assert_eq!(reply.get("rejected").unwrap().as_bool(), Some(false));
        }
    }
}

/// String elements intern server-side exactly like `intern_query` (unknown
/// strings dropped), and per-request k overrides work over the wire.
#[test]
fn element_queries_and_overrides_work_over_http() {
    let (repo, sim) = corpus_parts();
    let service = Arc::new(single_service(&repo, &sim));
    let server = KoiosServer::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let mut client = KoiosClient::new(server.addr());

    // Use a real set's element strings as the query.
    let elements: Vec<String> = repo
        .set(SetId(0))
        .iter()
        .map(|t| repo.token_str(*t).to_string())
        .collect();
    let mut with_unknown = elements.clone();
    with_unknown.push("certainly-not-in-the-vocabulary".to_string());

    let body = Json::obj([
        ("elements", Json::arr(with_unknown.iter().map(Json::str))),
        ("k", Json::num(2.0)),
        ("bypass_cache", Json::Bool(true)),
    ]);
    let (status, reply) = client.search(&body).unwrap();
    assert_eq!(status, 200, "{reply}");
    let hits = reply.get("hits").unwrap().as_array().unwrap();
    assert_eq!(hits.len(), 2, "k override respected: {reply}");

    let expected = service
        .search(
            SearchRequest::new(repo.intern_query(elements.iter()))
                .with_k(2)
                .bypassing_cache(),
        )
        .result;
    for (wire, want) in hits.iter().zip(&expected.hits) {
        assert_eq!(wire.get("set").unwrap().as_u64(), Some(want.set.0 as u64));
    }
}

/// The result cache is observable over the wire: a repeated query reports
/// `"cache": "hit"`, `/invalidate` resets it, `/stats` counts it.
#[test]
fn cache_lifecycle_over_http() {
    let (repo, sim) = corpus_parts();
    let service = Arc::new(single_service(&repo, &sim));
    let server = KoiosServer::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let mut client = KoiosClient::new(server.addr());

    let body = Json::obj([(
        "tokens",
        Json::arr(repo.set(SetId(1)).iter().map(|t| Json::num(t.0 as f64))),
    )]);
    let (_, first) = client.search(&body).unwrap();
    assert_eq!(first.get("cache").unwrap().as_str(), Some("miss"));
    let (_, second) = client.search(&body).unwrap();
    assert_eq!(second.get("cache").unwrap().as_str(), Some("hit"));
    assert_eq!(first.get("hits").unwrap(), second.get("hits").unwrap());

    let (status, inv) = client.invalidate().unwrap();
    assert_eq!(status, 200);
    assert_eq!(inv.get("invalidated").unwrap().as_bool(), Some(true));
    let (_, third) = client.search(&body).unwrap();
    assert_eq!(third.get("cache").unwrap().as_str(), Some("miss"));

    let (status, stats) = client.stats().unwrap();
    assert_eq!(status, 200);
    assert_eq!(stats.get("queries").unwrap().as_u64(), Some(3));
    assert_eq!(stats.get("cache_hits").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("searched").unwrap().as_u64(), Some(2));
    let rc = stats.get("result_cache").unwrap();
    assert_eq!(rc.get("invalidations").unwrap().as_u64(), Some(1));
    assert!(stats.get("token_cache").unwrap().get("entries").is_some());
    assert_eq!(stats.get("partitions").unwrap().as_u64(), Some(1));
}

/// `/healthz` answers, and semantically invalid overrides come back as
/// service-level rejections (HTTP 200, `"rejected": true`), not 400s.
#[test]
fn healthz_and_service_level_rejections() {
    let (repo, sim) = corpus_parts();
    let service = Arc::new(single_service(&repo, &sim));
    let server = KoiosServer::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let mut client = KoiosClient::new(server.addr());

    let (status, health) = client.healthz().unwrap();
    assert_eq!(status, 200);
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(
        health.get("sets").unwrap().as_u64(),
        Some(repo.num_sets() as u64)
    );

    let body = Json::obj([
        ("tokens", Json::arr([Json::num(0.0)])),
        ("k", Json::num(0.0)),
    ]);
    let (status, reply) = client.search(&body).unwrap();
    assert_eq!(status, 200, "wire-valid but service-invalid");
    assert_eq!(reply.get("rejected").unwrap().as_bool(), Some(true));
    assert_eq!(reply.get("cache").unwrap().as_str(), Some("rejected"));
    assert!(reply.get("hits").unwrap().as_array().unwrap().is_empty());
}

/// Malformed payloads and wrong routes answer clean JSON errors.
#[test]
fn malformed_requests_get_4xx_json() {
    let (repo, sim) = corpus_parts();
    let service = Arc::new(single_service(&repo, &sim));
    let server = KoiosServer::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let mut client = KoiosClient::new(server.addr());

    // Invalid JSON body.
    let (status, reply) = client
        .request("POST", "/search", Some(&Json::str("{not json")))
        .unwrap();
    assert_eq!(status, 400, "{reply}");
    // (A JSON *string* body parses fine but is not an object.)
    assert!(reply.get("error").is_some());

    // Schema violations.
    for bad in [
        Json::obj([("elements", Json::num(3.0))]),
        Json::obj([("tokens", Json::arr([Json::str("x")]))]),
        Json::obj([("tokens", Json::arr([Json::num(1e9)]))]),
        Json::obj::<String>([]),
    ] {
        let (status, reply) = client.search(&bad).unwrap();
        assert_eq!(status, 400, "accepted {bad}: {reply}");
        assert!(reply.get("error").unwrap().as_str().is_some());
    }

    // Unknown route and wrong method.
    let (status, _) = client.request("GET", "/nope", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = client.request("GET", "/search", None).unwrap();
    assert_eq!(status, 405);
    let (status, _) = client.request("POST", "/healthz", None).unwrap();
    assert_eq!(status, 405);

    // Raw garbage on the socket: the server answers 400 and closes.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.write_all(b"THIS IS NOT HTTP\r\n\r\n").unwrap();
    let mut buf = String::new();
    raw.read_to_string(&mut buf).unwrap();
    assert!(buf.starts_with("HTTP/1.1 400"), "{buf:?}");

    // The service is fine afterwards.
    let (status, _) = client.healthz().unwrap();
    assert_eq!(status, 200);
}

/// Many client threads hammer one server concurrently; every reply must
/// equal the sequential in-process answer for its query.
#[test]
fn concurrent_http_clients_get_consistent_answers() {
    let (repo, sim) = corpus_parts();
    let service = Arc::new(partitioned_service(&repo, &sim));
    let server = KoiosServer::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let addr = server.addr();

    let queries: Vec<Vec<TokenId>> = (0..8).map(|i| repo.set(SetId(i as u32)).to_vec()).collect();
    let expected: Vec<Vec<(u64, f64)>> = queries
        .iter()
        .map(|q| {
            service
                .search(SearchRequest::new(q.clone()).bypassing_cache())
                .result
                .hits
                .iter()
                .map(|h| (h.set.0 as u64, h.score.ub()))
                .collect()
        })
        .collect();

    std::thread::scope(|sc| {
        for t in 0..4 {
            let queries = &queries;
            let expected = &expected;
            sc.spawn(move || {
                let mut client = KoiosClient::new(addr);
                for round in 0..3 {
                    for (q, want) in queries.iter().zip(expected) {
                        let body = Json::obj([
                            (
                                "tokens",
                                Json::arr(q.iter().map(|tok| Json::num(tok.0 as f64))),
                            ),
                            ("bypass_cache", Json::Bool(true)),
                        ]);
                        let (status, reply) = client.search(&body).unwrap();
                        assert_eq!(status, 200, "thread {t} round {round}");
                        let hits = reply.get("hits").unwrap().as_array().unwrap();
                        assert_eq!(hits.len(), want.len());
                        for (wire, (set, ub)) in hits.iter().zip(want) {
                            assert_eq!(wire.get("set").unwrap().as_u64(), Some(*set));
                            let got = wire.get("ub").unwrap().as_f64().unwrap();
                            assert!((got - ub).abs() < 1e-9, "thread {t}: {got} != {ub}");
                        }
                    }
                }
            });
        }
    });
}

/// `GET /metrics` serves well-formed Prometheus text exposition covering
/// the stage/queue/lock-wait series, and the search/stats routes keep
/// agreeing with in-process results after the scrape.
#[test]
fn metrics_endpoint_serves_valid_prometheus_text() {
    let (repo, sim) = corpus_parts();
    let service = Arc::new(partitioned_service(&repo, &sim));
    let server = KoiosServer::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let mut client = KoiosClient::new(server.addr());

    // Populate the histograms with real traffic first.
    for set in 0..4u32 {
        let body = Json::obj([(
            "tokens",
            Json::arr(repo.set(SetId(set)).iter().map(|t| Json::num(t.0 as f64))),
        )]);
        let (status, _) = client.search(&body).unwrap();
        assert_eq!(status, 200);
    }

    let (status, text) = client.metrics().unwrap();
    assert_eq!(status, 200);
    assert!(!text.is_empty());
    // Every line is a `# HELP`/`# TYPE` comment or `series value` with a
    // parseable finite value and a legal metric name.
    for line in text.lines() {
        if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("exposition line without a value: {line:?}");
        });
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("unparseable value in {line:?}"));
        assert!(value.is_finite(), "{line:?}");
        let name_end = series.find('{').unwrap_or(series.len());
        assert!(
            !series[..name_end].is_empty()
                && series[..name_end]
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in {line:?}"
        );
        if name_end < series.len() {
            assert!(series.ends_with('}'), "unterminated labels in {line:?}");
        }
    }
    for want in [
        "koios_stage_seconds_bucket{stage=\"refine\"",
        "koios_stage_seconds_count{stage=\"verify\"}",
        "koios_shard_seconds",
        "koios_queue_depth",
        "koios_queue_wait_seconds_count",
        "koios_lock_wait_seconds_count{cache=\"result\"}",
        "koios_lock_wait_seconds_count{cache=\"token\"}",
        "koios_request_seconds_count{phase=\"serialize\"}",
        "koios_uptime_seconds",
        "koios_cache_ops_total{cache=\"result\",op=\"hit\"}",
    ] {
        assert!(text.contains(want), "missing {want} in:\n{text}");
    }

    // The search route still serializes hits byte-identically to the
    // in-process wire encoding of the same query.
    let q = repo.set(SetId(0)).to_vec();
    let in_process = service.search(SearchRequest::new(q.clone()).bypassing_cache());
    let expected_hits = koios::net::wire::response_to_json(&in_process, &repo)
        .get("hits")
        .unwrap()
        .encode();
    let body = Json::obj([
        ("tokens", Json::arr(q.iter().map(|t| Json::num(t.0 as f64)))),
        ("bypass_cache", Json::Bool(true)),
    ]);
    let (_, reply) = client.search(&body).unwrap();
    assert_eq!(reply.get("hits").unwrap().encode(), expected_hits);

    // The stats route agrees with the in-process snapshot and carries the
    // new uptime fields.
    let (status, stats) = client.stats().unwrap();
    assert_eq!(status, 200);
    let local = service.stats();
    assert_eq!(stats.get("queries").unwrap().as_u64(), Some(local.queries));
    assert_eq!(
        stats.get("searched").unwrap().as_u64(),
        Some(local.searched)
    );
    assert!(stats.get("uptime_secs").unwrap().as_f64().unwrap() >= 0.0);
    assert!(stats.get("start_time_unix_secs").unwrap().as_u64().unwrap() > 0);

    // Wrong method on the new route answers 405 like the others.
    let (status, _) = client.request("POST", "/metrics", None).unwrap();
    assert_eq!(status, 405);
}

/// Shutdown while clients hold open keep-alive connections: the server
/// joins cleanly and the port stops answering.
#[test]
fn shutdown_closes_cleanly() {
    let (repo, sim) = corpus_parts();
    let service = Arc::new(single_service(&repo, &sim));
    let mut server = KoiosServer::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let addr = server.addr();

    let mut client = KoiosClient::new(addr);
    let (status, _) = client.healthz().unwrap();
    assert_eq!(status, 200);

    // Keep the connection open across shutdown.
    server.shutdown();
    assert!(
        client.healthz().is_err(),
        "server must stop answering after shutdown"
    );
    drop(repo);
}

/// The introspection suite: `/healthz?full`, `/debug/engine`,
/// `/debug/cache` and `/debug/profile` all serve JSON that round-trips
/// through the wire codec with the load-bearing fields present, on both
/// engine backends, and reject non-GET methods like every other route.
#[test]
fn debug_suite_round_trips_on_both_backends() {
    let (repo, sim) = corpus_parts();
    for (label, service, partitions) in [
        ("single", single_service(&repo, &sim), 1u64),
        ("partitioned", partitioned_service(&repo, &sim), 4u64),
    ] {
        let service = Arc::new(service);
        let server = KoiosServer::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let mut client = KoiosClient::new(server.addr());

        // Drive real traffic first so caches and profiler have content.
        for set in 0..4u32 {
            let body = Json::obj([
                (
                    "tokens",
                    Json::arr(repo.set(SetId(set)).iter().map(|t| Json::num(t.0 as f64))),
                ),
                ("explain", Json::Bool(true)),
            ]);
            let (status, reply) = client.search(&body).unwrap();
            assert_eq!(status, 200, "{label}: {reply}");
            let funnel = reply
                .get("funnel")
                .unwrap_or_else(|| panic!("{label}: explain search must return a funnel: {reply}"));
            assert!(funnel
                .get("candidates_discovered")
                .unwrap()
                .as_u64()
                .is_some());
            assert!(funnel.get("returned").unwrap().as_u64().is_some());
            assert!(funnel.get("shards").unwrap().as_array().is_some());
        }
        // A cache hit of the same explain query omits the funnel: the
        // cache stores hits only, and explain never forks the cache key.
        let body = Json::obj([
            (
                "tokens",
                Json::arr(repo.set(SetId(0)).iter().map(|t| Json::num(t.0 as f64))),
            ),
            ("explain", Json::Bool(true)),
        ]);
        let (_, cached) = client.search(&body).unwrap();
        assert_eq!(
            cached.get("cache").unwrap().as_str(),
            Some("hit"),
            "{label}"
        );
        assert!(cached.get("funnel").is_none(), "{label}: {cached}");

        // Deep readiness: the bare fast path keeps its original shape...
        let (status, bare) = client.healthz().unwrap();
        assert_eq!(status, 200);
        assert!(
            bare.get("ready").is_none(),
            "{label}: bare healthz stays lean"
        );
        // ...while `?full` adds the readiness report.
        let (status, full) = client.healthz_full().unwrap();
        assert_eq!(status, 200, "{label}");
        assert_eq!(full.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(
            full.get("ready").unwrap().as_bool(),
            Some(true),
            "{label}: {full}"
        );
        assert_eq!(full.get("workers").unwrap().as_u64(), Some(2));
        assert_eq!(full.get("live_workers").unwrap().as_u64(), Some(2));
        assert_eq!(full.get("queue_depth").unwrap().as_u64(), Some(0));
        assert!(full.get("epoch").unwrap().as_u64().is_some());
        assert!(full.get("queue_pressure").unwrap().as_f64().is_some());

        // /debug/engine: corpus, per-partition index stats, MinHash bands.
        let (status, engine) = client.debug_engine().unwrap();
        assert_eq!(status, 200, "{label}");
        assert_eq!(
            engine.get("sets").unwrap().get("live").unwrap().as_u64(),
            Some(repo.num_sets() as u64),
            "{label}: {engine}"
        );
        assert_eq!(engine.get("partitions").unwrap().as_u64(), Some(partitions));
        let indexes = engine.get("indexes").unwrap().as_array().unwrap();
        assert_eq!(indexes.len(), partitions as usize, "{label}");
        for idx in indexes {
            assert!(idx.get("active_tokens").unwrap().as_u64().is_some());
            assert!(idx
                .get("posting_len_histogram")
                .unwrap()
                .as_array()
                .is_some());
        }
        let minhash = engine.get("minhash").unwrap();
        assert!(!minhash
            .get("band_occupancy")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
        assert!(
            engine
                .get("memory")
                .unwrap()
                .get("repository_bytes")
                .unwrap()
                .as_u64()
                .unwrap()
                > 0
        );

        // /debug/cache: per-stripe occupancy for both striped caches; the
        // result cache holds the five entries the traffic above inserted.
        let (status, cache) = client.debug_cache().unwrap();
        assert_eq!(status, 200, "{label}");
        let rc = cache.get("result").unwrap();
        let stripe_total: u64 = rc
            .get("stripes")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s.get("entries").unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(
            rc.get("entries").unwrap().as_u64(),
            Some(stripe_total),
            "{label}"
        );
        assert!(
            stripe_total > 0,
            "{label}: traffic above must have populated the cache"
        );

        // /debug/profile: enabled by default, JSON and collapsed forms.
        let (status, profile) = client.debug_profile().unwrap();
        assert_eq!(status, 200, "{label}");
        assert_eq!(profile.get("enabled").unwrap().as_bool(), Some(true));
        assert!(profile.get("ticks").unwrap().as_u64().is_some());
        assert!(profile.get("self_time").unwrap().as_array().is_some());
        let (status, collapsed) = client.debug_profile_collapsed().unwrap();
        assert_eq!(status, 200, "{label}");
        for line in collapsed.lines() {
            assert!(
                line.starts_with("koios;"),
                "{label}: bad stack line {line:?}"
            );
            let (_, count) = line.rsplit_once(' ').unwrap();
            count
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("{label}: {line:?}"));
        }

        // Wrong methods answer 405, like the rest of the route table.
        for path in ["/debug/engine", "/debug/cache", "/debug/profile"] {
            let (status, _) = client.request("POST", path, None).unwrap();
            assert_eq!(status, 405, "{label} {path}");
        }
    }
}

/// A service built `without_profiler` answers 409 on the profiler routes
/// and omits nothing else: the rest of the debug suite stays up.
#[test]
fn profiler_disabled_service_answers_409() {
    let (repo, sim) = corpus_parts();
    let service = Arc::new(SearchService::new(
        Arc::clone(&repo),
        Arc::clone(&sim),
        KoiosConfig::new(5, 0.8),
        ServiceConfig::new().with_workers(2).without_profiler(),
    ));
    let server = KoiosServer::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let mut client = KoiosClient::new(server.addr());

    let (status, profile) = client.debug_profile().unwrap();
    assert_eq!(status, 200);
    assert_eq!(profile.get("enabled").unwrap().as_bool(), Some(false));
    let (status, _) = client.debug_profile_collapsed().unwrap();
    assert_eq!(status, 409);
    let (status, _) = client.debug_engine().unwrap();
    assert_eq!(status, 200);
}
