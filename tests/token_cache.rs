//! Token-cache correctness: warm-cache searches must be byte-identical to
//! cold-cache searches across α values, query overlap patterns, and
//! repository swaps (generation bumps).

use koios::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A seeded fuzzy-string corpus: clusters of near-duplicate names so q-gram
/// Jaccard produces a rich sub-1.0 similarity structure.
fn build_repo(seed: u64, sets: usize) -> Repository {
    let mut rng = StdRng::seed_from_u64(seed);
    let stems = [
        "Blaine",
        "Charleston",
        "Columbia",
        "Sacramento",
        "Lexington",
        "Appleton",
        "MtPleasant",
        "Zurich",
        "Springfield",
        "Georgetown",
    ];
    let mut b = RepositoryBuilder::new();
    for i in 0..sets {
        let len = 3 + (rng.gen_range(0..4usize));
        let elems: Vec<String> = (0..len)
            .map(|_| {
                let stem = stems[rng.gen_range(0..stems.len())];
                // Mutate the tail to create near-duplicates.
                match rng.gen_range(0..4u32) {
                    0 => stem.to_string(),
                    1 => format!("{stem}s"),
                    2 => stem[..stem.len() - 1].to_string(),
                    _ => format!("{stem}ville"),
                }
            })
            .collect();
        b.add_set(&format!("s{i}"), elems);
    }
    b.build()
}

/// Seeded overlapping workload: random queries plus head/tail-dropped
/// siblings, so consecutive searches share most elements.
fn workload(repo: &Repository, seed: u64, n: usize) -> Vec<Vec<TokenId>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let vocab = repo.vocab_size() as u32;
    let mut out = Vec::new();
    for _ in 0..n {
        let len = 2 + rng.gen_range(0..4usize);
        let mut q: Vec<TokenId> = (0..len).map(|_| TokenId(rng.gen_range(0..vocab))).collect();
        q.sort_unstable();
        q.dedup();
        out.push(q.clone());
        if q.len() > 2 {
            out.push(q[1..].to_vec());
            out.push(q[..q.len() - 1].to_vec());
        }
    }
    out
}

#[test]
fn warm_cache_results_identical_across_alpha_values() {
    let repo = build_repo(11, 40);
    let sim = Arc::new(QGramJaccard::new(&repo, 3));
    let queries = workload(&repo, 7, 12);
    for alpha in [0.3, 0.5, 0.8] {
        let cold = Koios::new(&repo, sim.clone(), KoiosConfig::new(3, alpha));
        let cache = Arc::new(TokenKnnCache::new(8 << 20));
        let warm_engine = Koios::new(
            &repo,
            sim.clone(),
            KoiosConfig::new(3, alpha).with_token_cache(Arc::clone(&cache)),
        );
        // Two passes: the first fills (and already overlaps), the second is
        // fully warm. Every result must equal the cache-less reference.
        for pass in 0..2 {
            for q in &queries {
                let expect = cold.search(q);
                let got = warm_engine.search(q);
                assert_eq!(
                    got.hits, expect.hits,
                    "α={alpha} pass={pass} query={q:?}: warm hits diverged"
                );
            }
        }
        let counters = cache.counters();
        assert!(
            counters.hits > 0,
            "α={alpha}: overlapping workload never hit the cache"
        );
        // Second pass probes must all have hit (the first pass completed
        // every element's stream, so every list was cached).
        let probes_per_pass: u64 = queries.iter().map(|q| q.len() as u64).sum();
        assert!(
            counters.hits >= probes_per_pass,
            "α={alpha}: second pass should be all hits ({counters:?})"
        );
    }
}

#[test]
fn generation_bump_isolates_repository_mutations() {
    // Same cache instance across a "repo swap" — the serving-layer pattern
    // where embeddings/sets are rebuilt and the engine is re-created.
    let repo_v1 = build_repo(21, 30);
    let repo_v2 = build_repo(22, 30); // different contents, same stems
    let sim_v1 = Arc::new(QGramJaccard::new(&repo_v1, 3));
    let sim_v2 = Arc::new(QGramJaccard::new(&repo_v2, 3));
    let cache = Arc::new(TokenKnnCache::new(8 << 20));

    let engine_v1 = Koios::new(
        &repo_v1,
        sim_v1,
        KoiosConfig::new(3, 0.4).with_token_cache(Arc::clone(&cache)),
    );
    for q in workload(&repo_v1, 3, 8) {
        engine_v1.search(&q);
    }
    assert!(!cache.is_empty(), "v1 searches populated the cache");

    // Swap worlds: bump, then serve v2 from the same cache object.
    cache.bump_generation();
    assert_eq!(cache.len(), 0);

    let cold_v2 = Koios::new(&repo_v2, sim_v2.clone(), KoiosConfig::new(3, 0.4));
    let engine_v2 = Koios::new(
        &repo_v2,
        sim_v2,
        KoiosConfig::new(3, 0.4).with_token_cache(Arc::clone(&cache)),
    );
    for q in workload(&repo_v2, 5, 8) {
        let expect = cold_v2.search(&q);
        let got = engine_v2.search(&q);
        assert_eq!(got.hits, expect.hits, "post-bump query {q:?} diverged");
        // Nothing served may predate the bump.
        assert_eq!(
            got.stats.knn_cache.hits + got.stats.knn_cache.misses,
            q.len(),
            "every element probed exactly once"
        );
    }
    let snap = cache.snapshot();
    assert_eq!(snap.generation, 1);
    assert!(snap.entries > 0, "v2 searches repopulated the cache");
}

#[test]
fn partitioned_engines_share_the_cache_exactly() {
    let repo = build_repo(31, 60);
    let sim = Arc::new(QGramJaccard::new(&repo, 3));
    let queries = workload(&repo, 9, 6);

    let plain = PartitionedKoios::new(&repo, sim.clone(), KoiosConfig::new(3, 0.4), 4, 42);
    let cache = Arc::new(TokenKnnCache::new(8 << 20));
    let caching = PartitionedKoios::new(
        &repo,
        sim,
        KoiosConfig::new(3, 0.4).with_token_cache(Arc::clone(&cache)),
        4,
        42,
    );
    for q in &queries {
        assert_eq!(
            caching.search(q).hits,
            plain.search(q).hits,
            "partitioned cached search diverged for {q:?}"
        );
    }
    // Per-element lists are partition-independent: 4 partitions probing the
    // same element share one entry, so hits dominate misses.
    let c = cache.counters();
    assert!(c.hits > c.misses, "partitions should share lists: {c:?}");
}
