//! Every filter combination must preserve top-k validity: the filters are
//! performance features, never correctness features (paper §VII-A).

use koios::prelude::*;
use koios_core::overlap::semantic_overlap;
use koios_datagen::corpus::{Corpus, CorpusSpec};
use std::sync::Arc;

const EPS: f64 = 1e-9;

fn corpus(seed: u64) -> Corpus {
    let mut s = CorpusSpec::small(seed);
    s.num_sets = 120;
    s.vocab_size = 500;
    s.clusters = 60;
    Corpus::generate(s)
}

fn assert_valid_topk(
    corpus: &Corpus,
    sim: &dyn ElementSimilarity,
    alpha: f64,
    k: usize,
    query: &[koios_common::TokenId],
    result: &SearchResult,
    label: &str,
) {
    let mut oracle: Vec<f64> = corpus
        .repository
        .iter_sets()
        .map(|(id, _)| semantic_overlap(&corpus.repository, sim, alpha, query, id))
        .filter(|s| *s > 0.0)
        .collect();
    oracle.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let expected_len = k.min(oracle.len());
    assert_eq!(result.hits.len(), expected_len, "{label}");
    if expected_len == 0 {
        return;
    }
    let theta_k = oracle[expected_len - 1];
    for hit in &result.hits {
        let truth = semantic_overlap(&corpus.repository, sim, alpha, query, hit.set);
        assert!(
            truth >= theta_k - EPS,
            "{label}: {:?} scored {truth} < θk {theta_k}",
            hit.set
        );
    }
}

#[test]
fn all_filter_combinations_are_valid() {
    let c = corpus(400);
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(c.embeddings.clone())));
    let query = c.repository.set(SetId(4)).to_vec();
    let k = 5;
    let alpha = 0.8;
    for iub in [true, false] {
        for no_em in [true, false] {
            for early in [true, false] {
                for verify_all in [true, false] {
                    let mut cfg = KoiosConfig::new(k, alpha);
                    cfg.iub_filter = iub;
                    cfg.no_em_filter = no_em && !verify_all;
                    cfg.em_early_termination = early && !verify_all;
                    cfg.verify_all = verify_all;
                    let engine = Koios::new(&c.repository, sim.clone(), cfg);
                    let res = engine.search(&query);
                    assert_valid_topk(
                        &c,
                        sim.as_ref(),
                        alpha,
                        k,
                        &query,
                        &res,
                        &format!("iub={iub} no_em={no_em} early={early} all={verify_all}"),
                    );
                }
            }
        }
    }
}

#[test]
fn paper_greedy_mode_is_valid_on_clustered_embeddings() {
    // The PaperGreedy iUB is unsound in the worst case (DESIGN §2) but the
    // counterexample needs near-metric violations that clustered embeddings
    // do not produce; the paper's own datasets behave the same way.
    for seed in [500, 501, 502] {
        let c = corpus(seed);
        let sim: Arc<dyn ElementSimilarity> =
            Arc::new(CosineSimilarity::new(Arc::new(c.embeddings.clone())));
        let cfg = KoiosConfig::new(5, 0.8).with_ub_mode(UbMode::PaperGreedy);
        let engine = Koios::new(&c.repository, sim.clone(), cfg);
        let query = c.repository.set(SetId(17)).to_vec();
        let res = engine.search(&query);
        assert_valid_topk(
            &c,
            sim.as_ref(),
            0.8,
            5,
            &query,
            &res,
            &format!("paper-greedy {seed}"),
        );
    }
}

#[test]
fn sweep_interval_does_not_change_results() {
    let c = corpus(600);
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(c.embeddings.clone())));
    let query = c.repository.set(SetId(9)).to_vec();
    let mut baseline_scores: Option<Vec<f64>> = None;
    for interval in [1usize, 8, 64, 4096] {
        let mut cfg = KoiosConfig::new(4, 0.8);
        cfg.sweep_interval = interval;
        cfg.no_em_filter = false; // exact scores for comparison
        let res = Koios::new(&c.repository, sim.clone(), cfg).search(&query);
        let scores: Vec<f64> = res.hits.iter().map(|h| h.score.exact().unwrap()).collect();
        match &baseline_scores {
            None => baseline_scores = Some(scores),
            Some(b) => {
                assert_eq!(b.len(), scores.len(), "interval {interval}");
                for (x, y) in b.iter().zip(&scores) {
                    assert!((x - y).abs() < EPS, "interval {interval}");
                }
            }
        }
    }
}

#[test]
fn parallel_em_matches_sequential_scores() {
    let c = corpus(700);
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(c.embeddings.clone())));
    let query = c.repository.set(SetId(33)).to_vec();
    let mut cfg = KoiosConfig::new(6, 0.8);
    cfg.no_em_filter = false;
    let seq = Koios::new(&c.repository, sim.clone(), cfg.clone()).search(&query);
    let par = Koios::new(&c.repository, sim.clone(), cfg.with_parallel_em(8)).search(&query);
    let s: Vec<f64> = seq.hits.iter().map(|h| h.score.exact().unwrap()).collect();
    let p: Vec<f64> = par.hits.iter().map(|h| h.score.exact().unwrap()).collect();
    assert_eq!(s.len(), p.len());
    for (a, b) in s.iter().zip(&p) {
        assert!((a - b).abs() < EPS);
    }
}

#[test]
fn filters_only_reduce_work() {
    // Monotonicity of the filter stack: Baseline ≥ Baseline+ ≥ Koios in
    // exact matchings (the §VIII-B cost story).
    let c = corpus(800);
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(c.embeddings.clone())));
    let query = c.repository.set(SetId(2)).to_vec();
    let base = Koios::new(
        &c.repository,
        sim.clone(),
        KoiosConfig::new(5, 0.8).baseline(),
    )
    .search(&query);
    let plus = Koios::new(
        &c.repository,
        sim.clone(),
        KoiosConfig::new(5, 0.8).baseline_plus(),
    )
    .search(&query);
    let koios = Koios::new(&c.repository, sim.clone(), KoiosConfig::new(5, 0.8)).search(&query);
    assert!(plus.stats.em_full <= base.stats.em_full);
    assert!(koios.stats.em_full <= plus.stats.em_full);
    // Identical top-k scores across the stack.
    for (a, b) in base.hits.iter().zip(&plus.hits) {
        assert!((a.score.ub() - b.score.ub()).abs() < EPS);
    }
    for (a, b) in base.hits.iter().zip(&koios.hits) {
        assert!(
            a.score.ub() + EPS >= b.score.lb() && b.score.ub() + EPS >= a.score.lb(),
            "koios hit bounds inconsistent with baseline"
        );
    }
}
