//! End-to-end tests for request-scoped tracing: wire-propagated trace
//! context, the `GET /traces` endpoint, slow-log ↔ trace joinability, and
//! result determinism under traced concurrency.

use koios::datagen::corpus::{Corpus, CorpusSpec};
use koios::net::client::KoiosClient;
use koios::net::server::KoiosServer;
use koios::prelude::*;
use koios::service::SlowQueryLog;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn corpus_parts() -> (Arc<Repository>, Arc<dyn ElementSimilarity>) {
    let corpus = Corpus::generate(CorpusSpec::small(23));
    let repo = Arc::new(corpus.repository);
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(corpus.embeddings)));
    (repo, sim)
}

fn partitioned_service(
    repo: &Arc<Repository>,
    sim: &Arc<dyn ElementSimilarity>,
    cfg: ServiceConfig,
) -> SearchService {
    SearchService::new_partitioned(
        Arc::clone(repo),
        Arc::clone(sim),
        KoiosConfig::new(5, 0.8),
        4,
        13,
        cfg.with_workers(2).with_cache_capacity(64),
    )
}

fn hex_to_id(s: &str) -> u64 {
    u64::from_str_radix(s.trim_start_matches("0x"), 16).expect("hex trace id")
}

/// The tentpole acceptance criterion: a client-minted trace context rides
/// a `traceparent` header through `POST /search` on a partitioned backend,
/// and `GET /traces?id=…` returns a span tree — recorded under the
/// *client's* id, rooted at the client's span — covering queue, executor,
/// per-shard search, refine, verify, merge, and serialize.
#[test]
fn wire_propagated_trace_yields_a_full_span_tree() {
    let (repo, sim) = corpus_parts();
    let service = Arc::new(partitioned_service(&repo, &sim, ServiceConfig::new()));
    let server = KoiosServer::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();

    let ctx = TraceContext::new(0xC0FF_EE00_DEAD_BEEF);
    let mut client = KoiosClient::new(server.addr()).with_traceparent(ctx.render_traceparent());

    let body = Json::obj([
        (
            "tokens",
            Json::arr(repo.set(SetId(0)).iter().map(|t| Json::num(t.0 as f64))),
        ),
        ("bypass_cache", Json::Bool(true)),
    ]);
    let (status, reply) = client.search(&body).unwrap();
    assert_eq!(status, 200, "{reply}");
    let echoed = reply.get("trace_id").unwrap().as_str().unwrap();
    assert_eq!(
        hex_to_id(echoed),
        ctx.trace_id,
        "server must record under the propagated id"
    );

    let (status, tree) = client.trace(ctx.trace_id).unwrap();
    assert_eq!(status, 200, "sampled-flag context must be retained: {tree}");
    assert_eq!(
        hex_to_id(tree.get("trace_id").unwrap().as_str().unwrap()),
        ctx.trace_id
    );
    let spans = tree.get("spans").unwrap().as_array().unwrap();
    let names: Vec<&str> = spans
        .iter()
        .map(|s| s.get("name").unwrap().as_str().unwrap())
        .collect();
    for expect in [
        "request",
        "queue",
        "search",
        "executor",
        "shard",
        "refine",
        "postprocess",
        "verify",
        "merge",
        "serialize",
    ] {
        assert!(names.contains(&expect), "missing span {expect}: {names:?}");
    }
    // The root is parented to the client's own span: this server-side tree
    // is a subtree of the remote caller's trace.
    let root = &spans[0];
    assert_eq!(root.get("name").unwrap().as_str(), Some("request"));
    assert_eq!(
        hex_to_id(root.get("parent").unwrap().as_str().unwrap()),
        ctx.parent_span
    );
    // One shard span per partition, each tagged with its shard id.
    let shards: Vec<u64> = spans
        .iter()
        .filter(|s| s.get("name").unwrap().as_str() == Some("shard"))
        .map(|s| s.get("shard").unwrap().as_u64().unwrap())
        .collect();
    assert_eq!(shards, vec![0, 1, 2, 3]);

    // The listing endpoint knows about it too.
    let (status, listing) = client.traces().unwrap();
    assert_eq!(status, 200);
    assert_eq!(listing.get("enabled").unwrap().as_bool(), Some(true));
    assert!(
        listing
            .get("stats")
            .unwrap()
            .get("retained")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 1
    );
    let ids: Vec<u64> = listing
        .get("traces")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|t| hex_to_id(t.get("trace_id").unwrap().as_str().unwrap()))
        .collect();
    assert!(ids.contains(&ctx.trace_id), "{ids:?}");

    // Unknown ids are clean 404s, not dangling references.
    let (status, _) = client.trace(0x1).unwrap();
    assert_eq!(status, 404);
}

/// Every slow-log line must carry a `trace_id` that resolves against the
/// trace ring (the slow-log threshold doubles as a retention rule), plus
/// the retained tree's depth.
#[test]
fn slow_log_lines_join_against_retained_traces() {
    let (repo, sim) = corpus_parts();
    let lines = Arc::new(Mutex::new(Vec::new()));
    let sink = {
        let lines = Arc::clone(&lines);
        Arc::new(move |line: &str| lines.lock().unwrap().push(line.to_string())) as _
    };
    // Threshold zero: every request is "slow", so every line must join.
    let cfg = ServiceConfig::new().with_slow_query_log(SlowQueryLog::new(Duration::ZERO, sink));
    let service = partitioned_service(&repo, &sim, cfg);

    for set in 0..4u32 {
        let resp = service.search(SearchRequest::new(repo.set(SetId(set)).to_vec()));
        assert!(resp.trace_id.is_some());
    }
    // One cache hit to cover the flat-trace shape as well.
    service.search(SearchRequest::new(repo.set(SetId(0)).to_vec()));

    let lines = lines.lock().unwrap();
    assert_eq!(lines.len(), 5);
    for line in lines.iter() {
        let json = Json::parse(line).unwrap();
        let id = hex_to_id(json.get("trace_id").unwrap().as_str().unwrap());
        let trace = service
            .trace(id)
            .unwrap_or_else(|| panic!("unretained slow trace {line}"));
        assert!(trace.slow, "{line}");
        assert!(trace.well_formed(), "{line}");
        assert_eq!(
            json.get("trace_depth").unwrap().as_u64().unwrap(),
            trace.depth() as u64,
            "{line}"
        );
    }
}

/// Eight threads hammer a traced service; the traced answers must be
/// byte-identical to an untraced service's sequential answers, and every
/// retained trace must be a well-formed tree.
#[test]
fn traced_concurrency_diverges_nowhere_and_keeps_trees_well_formed() {
    let (repo, sim) = corpus_parts();
    let traced = Arc::new(partitioned_service(
        &repo,
        &sim,
        ServiceConfig::new().with_tracing(TraceConfig::default()),
    ));
    let untraced = partitioned_service(&repo, &sim, ServiceConfig::new().without_tracing());

    let queries: Vec<Vec<TokenId>> = (0..8).map(|i| repo.set(SetId(i)).to_vec()).collect();
    let expected: Vec<_> = queries
        .iter()
        .map(|q| {
            let resp = untraced.search(SearchRequest::new(q.clone()).bypassing_cache());
            assert_eq!(resp.trace_id, None, "untraced service must not mint ids");
            resp.result.hits
        })
        .collect();

    std::thread::scope(|sc| {
        for t in 0..8 {
            let traced = &traced;
            let queries = &queries;
            let expected = &expected;
            sc.spawn(move || {
                for round in 0..4 {
                    for (q, want) in queries.iter().zip(expected) {
                        let resp = traced.search(SearchRequest::new(q.clone()).bypassing_cache());
                        assert_eq!(
                            &resp.result.hits, want,
                            "thread {t} round {round}: traced result diverged"
                        );
                        assert!(resp.trace_id.is_some());
                    }
                }
            });
        }
    });

    let stats = traced.trace_stats().unwrap();
    assert_eq!(stats.completed, 8 * 4 * 8, "every request was offered");
    let retained = traced.traces();
    assert_eq!(stats.stored, retained.len());
    for trace in &retained {
        assert!(trace.well_formed(), "malformed tree {:#?}", trace);
        assert!(trace.duration_ns > 0);
    }
}

/// Tracing can be switched off entirely: no ids in responses and `409`
/// from the HTTP endpoint, while searches keep working.
#[test]
fn disabled_tracing_is_inert_over_http() {
    let (repo, sim) = corpus_parts();
    let service = Arc::new(partitioned_service(
        &repo,
        &sim,
        ServiceConfig::new().without_tracing(),
    ));
    let server = KoiosServer::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let mut client =
        KoiosClient::new(server.addr()).with_traceparent(TraceContext::new(7).render_traceparent());

    let body = Json::obj([(
        "tokens",
        Json::arr(repo.set(SetId(0)).iter().map(|t| Json::num(t.0 as f64))),
    )]);
    let (status, reply) = client.search(&body).unwrap();
    assert_eq!(status, 200);
    assert!(reply.get("trace_id").unwrap().as_str().is_none());
    let (status, _) = client.traces().unwrap();
    assert_eq!(status, 409);
}
