//! Property-based end-to-end exactness: random small repositories of random
//! short strings under q-gram Jaccard similarity, Koios vs the brute-force
//! Hungarian oracle. This exercises degenerate shapes the seeded corpora
//! never produce (singleton sets, duplicate sets, empty-string tokens,
//! queries with out-of-vocabulary tokens).

use koios::prelude::*;
use koios_core::overlap::semantic_overlap;
use proptest::prelude::*;
use std::sync::Arc;

fn repo_strategy() -> impl Strategy<Value = (Vec<Vec<String>>, Vec<String>)> {
    let token = "[a-c]{0,6}";
    let set = proptest::collection::vec(token, 1..8);
    (
        proptest::collection::vec(set.clone(), 1..20),
        proptest::collection::vec(token, 1..8),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn koios_is_exact_on_random_string_repos(
        (sets, query_strs) in repo_strategy(),
        k in 1usize..6,
        alpha in 0.3f64..1.0,
        no_em in proptest::bool::ANY,
        iub in proptest::bool::ANY,
    ) {
        let mut builder = RepositoryBuilder::new();
        for (i, s) in sets.iter().enumerate() {
            builder.add_set(&format!("s{i}"), s.iter().map(|x| x.as_str()));
        }
        let mut repo = builder.build();
        let query = repo.intern_query_mut(query_strs.iter().map(|x| x.as_str()));
        prop_assume!(!query.is_empty());
        let sim: Arc<dyn ElementSimilarity> = Arc::new(QGramJaccard::new(&repo, 2));

        let mut cfg = KoiosConfig::new(k, alpha);
        cfg.no_em_filter = no_em;
        cfg.iub_filter = iub;
        let engine = Koios::new(&repo, sim.clone(), cfg);
        let result = engine.search(&query);

        // Oracle.
        let mut oracle: Vec<f64> = repo
            .iter_sets()
            .map(|(id, _)| semantic_overlap(&repo, sim.as_ref(), alpha, &query, id))
            .filter(|s| *s > 0.0)
            .collect();
        oracle.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let expected_len = k.min(oracle.len());
        prop_assert_eq!(result.hits.len(), expected_len);
        if expected_len == 0 {
            return Ok(());
        }
        let theta_k = oracle[expected_len - 1];
        for hit in &result.hits {
            let truth = semantic_overlap(&repo, sim.as_ref(), alpha, &query, hit.set);
            prop_assert!(truth >= theta_k - 1e-9,
                "hit {:?} truth {truth} below θk {theta_k}", hit.set);
            prop_assert!(hit.score.lb() <= truth + 1e-9);
            prop_assert!(hit.score.ub() >= truth - 1e-9);
        }
    }

    #[test]
    fn vanilla_is_semantic_floor_on_random_repos(
        (sets, query_strs) in repo_strategy(),
        alpha in 0.3f64..1.0,
    ) {
        let mut builder = RepositoryBuilder::new();
        for (i, s) in sets.iter().enumerate() {
            builder.add_set(&format!("s{i}"), s.iter().map(|x| x.as_str()));
        }
        let mut repo = builder.build();
        let query = repo.intern_query_mut(query_strs.iter().map(|x| x.as_str()));
        prop_assume!(!query.is_empty());
        let sim = QGramJaccard::new(&repo, 2);
        for (id, _) in repo.iter_sets() {
            let so = semantic_overlap(&repo, &sim, alpha, &query, id);
            let vo = repo.vanilla_overlap(&query, id) as f64;
            prop_assert!(so >= vo - 1e-9, "Lemma 1 violated: {so} < {vo}");
        }
    }
}
