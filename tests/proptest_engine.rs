//! Randomized end-to-end exactness: random small repositories of random
//! short strings under q-gram Jaccard similarity, Koios vs the brute-force
//! Hungarian oracle. This exercises degenerate shapes the seeded corpora
//! never produce (singleton sets, duplicate sets, empty-string tokens,
//! queries with out-of-vocabulary tokens).
//!
//! Originally written with `proptest`; rewritten as seeded random-case
//! loops because the offline build environment cannot vendor the crate.

use koios::prelude::*;
use koios_core::overlap::semantic_overlap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A random token over the alphabet `a..=c`, length 0..=6 (empty strings
/// included on purpose — they are one of the degenerate shapes).
fn token(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0..7usize);
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..3u32) as u8) as char)
        .collect()
}

/// 1..20 sets of 1..8 tokens plus a 1..8-token query.
fn repo_case(rng: &mut StdRng) -> (Vec<Vec<String>>, Vec<String>) {
    let n_sets = rng.gen_range(1..20usize);
    let sets = (0..n_sets)
        .map(|_| {
            let n = rng.gen_range(1..8usize);
            (0..n).map(|_| token(rng)).collect()
        })
        .collect();
    let qn = rng.gen_range(1..8usize);
    let query = (0..qn).map(|_| token(rng)).collect();
    (sets, query)
}

#[test]
fn koios_is_exact_on_random_string_repos() {
    let mut rng = StdRng::seed_from_u64(0xE1);
    for _ in 0..48 {
        let (sets, query_strs) = repo_case(&mut rng);
        let k = rng.gen_range(1..6usize);
        let alpha = rng.gen_range(0.3..1.0f64);
        let no_em = rng.gen::<bool>();
        let iub = rng.gen::<bool>();

        let mut builder = RepositoryBuilder::new();
        for (i, s) in sets.iter().enumerate() {
            builder.add_set(&format!("s{i}"), s.iter().map(|x| x.as_str()));
        }
        let mut repo = builder.build();
        let query = repo.intern_query_mut(query_strs.iter().map(|x| x.as_str()));
        if query.is_empty() {
            continue;
        }
        let sim: Arc<dyn ElementSimilarity> = Arc::new(QGramJaccard::new(&repo, 2));

        let mut cfg = KoiosConfig::new(k, alpha);
        cfg.no_em_filter = no_em;
        cfg.iub_filter = iub;
        let engine = Koios::new(&repo, sim.clone(), cfg);
        let result = engine.search(&query);

        // Oracle.
        let mut oracle: Vec<f64> = repo
            .iter_sets()
            .map(|(id, _)| semantic_overlap(&repo, sim.as_ref(), alpha, &query, id))
            .filter(|s| *s > 0.0)
            .collect();
        oracle.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let expected_len = k.min(oracle.len());
        assert_eq!(result.hits.len(), expected_len);
        if expected_len == 0 {
            continue;
        }
        let theta_k = oracle[expected_len - 1];
        for hit in &result.hits {
            let truth = semantic_overlap(&repo, sim.as_ref(), alpha, &query, hit.set);
            assert!(
                truth >= theta_k - 1e-9,
                "hit {:?} truth {truth} below θk {theta_k}",
                hit.set
            );
            assert!(hit.score.lb() <= truth + 1e-9);
            assert!(hit.score.ub() >= truth - 1e-9);
        }
    }
}

#[test]
fn vanilla_is_semantic_floor_on_random_repos() {
    let mut rng = StdRng::seed_from_u64(0xE2);
    for _ in 0..48 {
        let (sets, query_strs) = repo_case(&mut rng);
        let alpha = rng.gen_range(0.3..1.0f64);

        let mut builder = RepositoryBuilder::new();
        for (i, s) in sets.iter().enumerate() {
            builder.add_set(&format!("s{i}"), s.iter().map(|x| x.as_str()));
        }
        let mut repo = builder.build();
        let query = repo.intern_query_mut(query_strs.iter().map(|x| x.as_str()));
        if query.is_empty() {
            continue;
        }
        let sim = QGramJaccard::new(&repo, 2);
        for (id, _) in repo.iter_sets() {
            let so = semantic_overlap(&repo, &sim, alpha, &query, id);
            let vo = repo.vanilla_overlap(&query, id) as f64;
            assert!(so >= vo - 1e-9, "Lemma 1 violated: {so} < {vo}");
        }
    }
}
