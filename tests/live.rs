//! Live-corpus acceptance suite: mutation must be *indistinguishable from
//! a rebuild* and hot swaps must never drop a request.
//!
//! The mutability refactor (PR 8) threads `CorpusOp` batches through every
//! layer — repository tombstones, incremental embedding rows, index
//! insert/remove, the COW `MutableEngine`, snapshot delta chains and the
//! RCU-swapped service backend. These tests drive the whole stack at once:
//! a writer churns ops while 8 threads query, and the end state has to be
//! byte-identical to a cold replay of the same ops onto the same seed
//! corpus, on both engine layouts, with zero rejected requests along the
//! way. Snapshot deltas round-trip through `POST`-style service calls and
//! corrupted delta bytes must refuse to load, never serve wrong results.

use koios::datagen::corpus::{Corpus, CorpusSpec};
use koios::prelude::*;
use koios::store::SectionKind;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const THREADS: usize = 8;

fn corpus(seed: u64) -> Corpus {
    // Same compact shape as the concurrency suite: determinism shows at
    // any scale, and small sets keep Hungarian verification cheap in
    // debug builds.
    let mut spec = CorpusSpec::small(seed);
    spec.num_sets = 60;
    spec.vocab_size = 240;
    spec.clusters = 30;
    spec.set_size_min = 3;
    spec.set_size_max = 10;
    Corpus::generate(spec)
}

/// A deterministic op script: `inserts` new sets built from existing vocab
/// strings (so cosine has vectors to work with), interleaved with removes
/// of both seed sets and previously inserted sets. Every prefix is valid:
/// removes only target ids that are live when the op applies.
fn op_script(repo: &Repository, inserts: usize) -> Vec<CorpusOp> {
    let vocab: Vec<String> = (0..repo.vocab_size())
        .map(|t| repo.token_str(TokenId(t as u32)).to_string())
        .collect();
    let base = repo.num_sets() as u32;
    let mut ops = Vec::new();
    // Ids live at each point of the script, so removes always target a
    // set that exists and was not already tombstoned — seed sets and
    // script-inserted sets alike.
    let mut live: Vec<u32> = (0..base).collect();
    for i in 0..inserts {
        let len = 3 + (i * 7) % 6;
        let tokens: Vec<String> = (0..len)
            .map(|j| vocab[(i * 31 + j * 17) % vocab.len()].clone())
            .collect();
        ops.push(CorpusOp::insert(&format!("live{i}"), tokens));
        live.push(base + i as u32);
        // Every third insert retires a pseudo-randomly chosen live set.
        if i % 3 == 2 {
            let victim = live.swap_remove((i * 13) % live.len());
            ops.push(CorpusOp::remove(SetId(victim)));
        }
    }
    ops
}

fn engine(c: &Corpus, partitions: usize, cfg: KoiosConfig) -> MutableEngine {
    let repo = Arc::new(c.repository.clone());
    let emb = Arc::new(c.embeddings.clone());
    match partitions {
        1 => MutableEngine::single(repo, Some(emb), cfg, cosine_factory()).unwrap(),
        p => {
            MutableEngine::partitioned(repo, Some(emb), cfg, p, 0xC0FFEE, cosine_factory()).unwrap()
        }
    }
}

fn queries(repo: &Repository) -> Vec<Vec<TokenId>> {
    (0..6u32)
        .map(|i| repo.set(SetId(i * 9 % repo.num_sets() as u32)).to_vec())
        .collect()
}

/// ≥1k ops stream through a live service while 8 threads keep querying:
/// no request may be rejected, and when the writer finishes, the served
/// state must answer every probe identically to a *cold* engine built by
/// replaying the same script onto the same seed corpus — on both layouts.
#[test]
fn hammered_mutation_equals_cold_rebuild_with_zero_drops() {
    let c = corpus(8001);
    let ops = op_script(&c.repository, 800);
    assert!(ops.len() >= 1000, "script has {} ops", ops.len());
    let qs = queries(&c.repository);
    for partitions in [1usize, 4] {
        let cfg = KoiosConfig::new(5, 0.8).with_token_cache(Arc::new(TokenKnnCache::new(8 << 20)));
        let service = SearchService::from_mutable(
            engine(&c, partitions, cfg.clone()),
            ServiceConfig::new()
                .with_workers(THREADS)
                .with_cache_capacity(64),
        );

        let writer_done = AtomicBool::new(false);
        let answered = AtomicU64::new(0);
        let service_ref = &service;
        let qs_ref = &qs;
        let ops_ref = &ops;
        let done = &writer_done;
        let answered_ref = &answered;
        std::thread::scope(|sc| {
            for t in 0..THREADS {
                sc.spawn(move || {
                    let mut i = t; // stagger collision patterns
                    while !done.load(Ordering::Relaxed) {
                        let q = qs_ref[i % qs_ref.len()].clone();
                        let resp = service_ref.search(SearchRequest::new(q));
                        assert!(!resp.rejected, "thread {t}: dropped request");
                        assert!(!resp.result.stats.timed_out);
                        answered_ref.fetch_add(1, Ordering::Relaxed);
                        i += 1;
                    }
                });
            }
            // The writer: one batch of 10 ops at a time, epoch per batch.
            for (b, batch) in ops_ref.chunks(10).enumerate() {
                let out = service_ref
                    .ingest(batch)
                    .unwrap_or_else(|e| panic!("batch {b} rejected: {e}"));
                assert_eq!(out.epoch, b as u64 + 1);
            }
            done.store(true, Ordering::Relaxed);
        });
        assert!(
            answered.load(Ordering::Relaxed) > 0,
            "hammer produced no queries"
        );

        // Cold replay: a fresh engine over the same seed corpus, the same
        // script applied in one sitting. Mutation history must not matter.
        let mut cold = engine(&c, partitions, cfg);
        cold.apply(&ops).unwrap();
        let cold_backend = cold.backend();
        let live_backend = service.backend();
        let live_repo = service.repository();
        assert_eq!(live_repo.num_sets(), cold.repository().num_sets());
        for (id, tokens) in cold.repository().live_sets() {
            assert!(live_repo.is_live(id), "p={partitions}: set {id:?} liveness");
            assert_eq!(live_repo.set(id), tokens, "p={partitions}: set {id:?}");
        }
        // Probe with queries over the *final* corpus, including tokens
        // that only exist because the script interned them.
        let mut probes = queries(&live_repo);
        probes.push(
            live_repo
                .set(SetId(live_repo.num_sets() as u32 - 1))
                .to_vec(),
        );
        for (i, q) in probes.iter().enumerate() {
            assert_eq!(
                live_backend.search(q).hits,
                cold_backend.search(q).hits,
                "p={partitions}: probe {i} diverged from cold rebuild"
            );
        }

        let st = service.stats();
        assert_eq!(st.engine_epoch, (ops.len() as u64).div_ceil(10));
        assert_eq!(
            st.sets_added as usize,
            ops.iter().filter(|o| o.is_insert()).count()
        );
        assert_eq!(
            st.sets_removed as usize,
            ops.iter().filter(|o| !o.is_insert()).count()
        );
        assert_eq!(st.rejected, 0, "admission control dropped requests");
    }
}

/// Delta chaining through the service: base write, delta append, warm
/// restore, hot reload — provenance visible in `/stats` the whole way.
#[test]
fn service_delta_snapshots_roundtrip_and_hot_reload() {
    let c = corpus(8002);
    let cfg = KoiosConfig::new(5, 0.8);
    let service = SearchService::from_mutable(
        engine(&c, 4, cfg.clone()),
        ServiceConfig::new().with_workers(2),
    );
    let dir = std::env::temp_dir().join("koios-live-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.ksnap");
    let _ = std::fs::remove_file(&path);

    let meta = service.snapshot_to(&path).unwrap();
    assert!(meta.deltas.is_empty());

    let ops = op_script(&c.repository, 12);
    service.ingest(&ops).unwrap();
    let meta = service.snapshot_to(&path).unwrap();
    assert_eq!(meta.deltas.len(), 1);
    assert_eq!(meta.latest_epoch(), 1);
    assert_eq!(meta.deltas[0].ops, ops.len());

    // Warm restore on a second service: provenance + identical answers.
    let warm =
        SearchService::from_snapshot(&path, cfg.clone(), ServiceConfig::new().with_workers(2))
            .unwrap();
    let info = warm.stats().snapshot.expect("warm start has provenance");
    assert_eq!((info.deltas, info.latest_epoch), (1, 1));
    assert_eq!(info.partitions, 4);
    assert_eq!(warm.engine_epoch(), 1);
    for q in queries(&warm.repository()) {
        assert_eq!(
            warm.search(SearchRequest::new(q.clone())).result.hits,
            service.search(SearchRequest::new(q)).result.hits
        );
    }

    // Compaction folds the delta into the base; answers are unchanged.
    let compacted = koios::store::compact(&path).unwrap();
    assert!(compacted.deltas.is_empty());
    let from_compacted =
        SearchService::from_snapshot(&path, cfg, ServiceConfig::new().with_workers(2)).unwrap();
    for q in queries(&warm.repository()) {
        assert_eq!(
            from_compacted
                .search(SearchRequest::new(q.clone()))
                .result
                .hits,
            warm.search(SearchRequest::new(q)).result.hits
        );
    }

    // Hot reload: the first service diverges (more ops), then swaps back
    // to the file's state with a strictly higher epoch.
    service
        .ingest(&[CorpusOp::insert("stray", ["x", "y", "z"])])
        .unwrap();
    let before_reload = service.engine_epoch();
    let info = service.reload(&path).unwrap();
    assert!(service.engine_epoch() > before_reload);
    assert_eq!(
        service.repository().num_sets(),
        warm.repository().num_sets()
    );
    assert_eq!(service.stats().snapshot, Some(info));
}

/// Every corrupted byte in a delta section must be detected at load time:
/// flips across the delta byte range always fail with a checksum or chain
/// error — never a quietly different corpus.
#[test]
fn delta_bit_flips_never_load() {
    let c = corpus(8003);
    let service = SearchService::from_mutable(
        engine(&c, 1, KoiosConfig::new(5, 0.8)),
        ServiceConfig::new().with_workers(1),
    );
    let dir = std::env::temp_dir().join("koios-live-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bitflip.ksnap");
    let _ = std::fs::remove_file(&path);
    service.snapshot_to(&path).unwrap();
    service.ingest(&op_script(&c.repository, 6)).unwrap();
    let meta = service.snapshot_to(&path).unwrap();
    let delta_sections: Vec<(u64, u64)> = meta
        .sections
        .iter()
        .filter(|s| s.kind == SectionKind::Delta)
        .map(|s| (s.offset, s.len))
        .collect();
    assert!(!delta_sections.is_empty());

    let pristine = std::fs::read(&path).unwrap();
    for (offset, len) in delta_sections {
        // Stride through the section: cheap, and every byte class (length
        // prefixes, op payloads, vector bits) gets hit.
        for i in (0..len as usize).step_by(7) {
            let mut bytes = pristine.clone();
            bytes[offset as usize + i] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
            let err = SearchService::from_snapshot(
                &path,
                KoiosConfig::new(5, 0.8),
                ServiceConfig::new().with_workers(1),
            )
            .err()
            .unwrap_or_else(|| panic!("flip at +{i} loaded fine"));
            let msg = err.to_string();
            assert!(
                msg.contains("checksum") || msg.contains("delta chain"),
                "flip at +{i}: unexpected error {msg}"
            );
        }
    }
    std::fs::write(&path, &pristine).unwrap();
    assert!(SearchService::from_snapshot(
        &path,
        KoiosConfig::new(5, 0.8),
        ServiceConfig::new().with_workers(1)
    )
    .is_ok());
}

/// The HTTP admin surface end-to-end: ingest over the wire, watch the
/// epoch and counters in `/stats`, snapshot + reload remotely, and get a
/// clean 409 from a server whose service cannot mutate.
#[test]
fn http_admin_routes_mutate_snapshot_and_reload() {
    let c = corpus(8004);
    let service = Arc::new(SearchService::from_mutable(
        engine(&c, 1, KoiosConfig::new(5, 0.8)),
        ServiceConfig::new().with_workers(2),
    ));
    let server = KoiosServer::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let mut client = KoiosClient::new(server.addr());

    // A set whose name we can find again after ingesting it over HTTP.
    let donor: Vec<String> = c
        .repository
        .set(SetId(0))
        .iter()
        .map(|t| c.repository.token_str(*t).to_string())
        .collect();
    let body = Json::obj([(
        "ops",
        Json::arr([Json::obj([
            ("op", Json::str("insert")),
            ("name", Json::str("wire0")),
            ("tokens", Json::arr(donor.iter().map(Json::str))),
        ])]),
    )]);
    let (status, reply) = client.ingest(&body).unwrap();
    assert_eq!(status, 200, "{reply:?}");
    assert_eq!(reply.get("inserted").unwrap().as_u64(), Some(1));
    assert_eq!(reply.get("epoch").unwrap().as_u64(), Some(1));

    // The ingested set is immediately searchable and tops its own query.
    let (status, reply) = client.search_elements(&donor).unwrap();
    assert_eq!(status, 200);
    let hits = reply.get("hits").unwrap().as_array().unwrap();
    assert!(hits
        .iter()
        .any(|h| h.get("name").unwrap().as_str() == Some("wire0")));

    // /stats carries the live counters.
    let (_, stats) = client.stats().unwrap();
    assert_eq!(stats.get("engine_epoch").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("sets_added").unwrap().as_u64(), Some(1));

    // Snapshot + divergence + reload, all over the wire.
    let dir = std::env::temp_dir().join("koios-live-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("http.ksnap");
    let _ = std::fs::remove_file(&path);
    let path_str = path.to_str().unwrap();
    let (status, reply) = client.snapshot(path_str).unwrap();
    assert_eq!(status, 200, "{reply:?}");
    assert_eq!(reply.get("deltas").unwrap().as_u64(), Some(0));
    let remove = Json::obj([(
        "ops",
        Json::arr([Json::obj([
            ("op", Json::str("remove")),
            ("set", Json::num(c.repository.num_sets() as f64)),
        ])]),
    )]);
    let (status, _) = client.ingest(&remove).unwrap();
    assert_eq!(status, 200);
    let (status, reply) = client.reload(path_str).unwrap();
    assert_eq!(status, 200, "{reply:?}");
    assert_eq!(reply.get("reloaded").unwrap().as_bool(), Some(true));
    let snap = reply.get("snapshot").unwrap();
    assert_eq!(snap.get("latest_epoch").unwrap().as_u64(), Some(0));
    // The reloaded corpus has wire0 back (the remove happened after the
    // snapshot was taken).
    let (_, reply) = client.search_elements(&donor).unwrap();
    let hits = reply.get("hits").unwrap().as_array().unwrap();
    assert!(hits
        .iter()
        .any(|h| h.get("name").unwrap().as_str() == Some("wire0")));
    // /stats now shows the reload provenance.
    let (_, stats) = client.stats().unwrap();
    let snap = stats.get("snapshot").unwrap();
    assert_eq!(snap.get("deltas").unwrap().as_u64(), Some(0));

    // The admin routes are instrumented: mutation counters and phase
    // histograms in /metrics, plus epoch-stamped forced traces in the ring
    // (ingest ×2, snapshot ×1, reload ×1 so far).
    let (status, text) = client.metrics().unwrap();
    assert_eq!(status, 200);
    for want in [
        "koios_mutations_total{op=\"ingest\"} 2",
        "koios_mutations_total{op=\"snapshot\"} 1",
        "koios_mutations_total{op=\"reload\"} 1",
        "koios_request_seconds_count{phase=\"ingest\"} 2",
        "koios_request_seconds_count{phase=\"snapshot\"} 1",
        "koios_request_seconds_count{phase=\"reload\"} 1",
    ] {
        assert!(text.contains(want), "missing {want} in:\n{text}");
    }
    let mutation_traces: Vec<_> = service
        .traces()
        .into_iter()
        .filter(|t| t.spans.iter().any(|s| s.name == "reload"))
        .collect();
    assert_eq!(mutation_traces.len(), 1, "reload trace always retained");
    assert!(mutation_traces[0].forced);
    // The reload published epoch 3: two ingests bumped the live engine to
    // 2, and the hot swap bumps past it so stale cache entries die.
    assert_eq!(mutation_traces[0].spans[0].epoch, 3);

    // Malformed ops are 400s; an immutable server answers 409.
    let (status, reply) = client
        .ingest(&Json::obj([("ops", Json::num(3.0))]))
        .unwrap();
    assert_eq!(status, 400, "{reply:?}");
    let immutable = Arc::new(SearchService::new(
        Arc::new(c.repository.clone()),
        Arc::new(CosineSimilarity::new(Arc::new(c.embeddings.clone()))),
        KoiosConfig::new(5, 0.8),
        ServiceConfig::new().with_workers(1),
    ));
    let server2 = KoiosServer::bind(immutable, "127.0.0.1:0").unwrap();
    let mut client2 = KoiosClient::new(server2.addr());
    let (status, reply) = client2.ingest(&body).unwrap();
    assert_eq!(status, 409, "{reply:?}");
    assert!(reply
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("mutable"));
}
