//! End-to-end exactness: Koios must return a valid top-k result (Def. 2)
//! for every configuration, compared against a brute-force oracle that runs
//! the Hungarian algorithm on *every* repository set.
//!
//! Ties make the result set ambiguous (Def. 2 allows arbitrary tie-breaks),
//! so validity is checked as: (1) the result has `min(k, #candidates)`
//! hits; (2) every returned set's true overlap is ≥ the oracle's k-th best
//! score (up to float tolerance); (3) reported exact scores match the
//! oracle; (4) reported intervals contain the oracle score.

use koios::prelude::*;
use koios_core::overlap::semantic_overlap;
use koios_datagen::corpus::{Corpus, CorpusSpec};
use std::sync::Arc;

const EPS: f64 = 1e-9;

fn oracle_scores(
    corpus: &Corpus,
    sim: &dyn ElementSimilarity,
    alpha: f64,
    query: &[koios_common::TokenId],
) -> Vec<(f64, SetId)> {
    let mut scored: Vec<(f64, SetId)> = corpus
        .repository
        .iter_sets()
        .map(|(id, _)| {
            (
                semantic_overlap(&corpus.repository, sim, alpha, query, id),
                id,
            )
        })
        .filter(|(s, _)| *s > 0.0)
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then_with(|| a.1.cmp(&b.1)));
    scored
}

fn check_result(
    corpus: &Corpus,
    sim: &dyn ElementSimilarity,
    alpha: f64,
    k: usize,
    query: &[koios_common::TokenId],
    result: &koios_core::SearchResult,
    label: &str,
) {
    let oracle = oracle_scores(corpus, sim, alpha, query);
    let expected_len = k.min(oracle.len());
    assert_eq!(
        result.hits.len(),
        expected_len,
        "{label}: expected {expected_len} hits, got {}",
        result.hits.len()
    );
    if expected_len == 0 {
        return;
    }
    let theta_k = oracle[expected_len - 1].0;
    for hit in &result.hits {
        let truth = semantic_overlap(&corpus.repository, sim, alpha, query, hit.set);
        assert!(
            truth >= theta_k - EPS,
            "{label}: returned set {:?} with SO {truth} below θk {theta_k}",
            hit.set
        );
        match hit.score {
            ScoreBound::Exact(s) => assert!(
                (s - truth).abs() < EPS,
                "{label}: exact score {s} != oracle {truth} for {:?}",
                hit.set
            ),
            ScoreBound::Range { lb, ub } => assert!(
                lb <= truth + EPS && truth <= ub + EPS,
                "{label}: oracle {truth} outside [{lb}, {ub}] for {:?}",
                hit.set
            ),
        }
    }
    // No duplicate sets.
    let mut ids = result.set_ids();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), result.hits.len(), "{label}: duplicate hits");
}

fn spec(seed: u64) -> CorpusSpec {
    let mut s = CorpusSpec::small(seed);
    s.num_sets = 150;
    s.vocab_size = 600;
    s.clusters = 80;
    s
}

#[test]
fn koios_matches_oracle_cosine_many_seeds() {
    for seed in 0..6 {
        let corpus = Corpus::generate(spec(seed));
        let sim: Arc<dyn ElementSimilarity> =
            Arc::new(CosineSimilarity::new(Arc::new(corpus.embeddings.clone())));
        for k in [1, 3, 10] {
            let engine = Koios::new(&corpus.repository, sim.clone(), KoiosConfig::new(k, 0.8));
            for probe in [0u32, 7, 42] {
                let query = corpus.repository.set(SetId(probe)).to_vec();
                let res = engine.search(&query);
                check_result(
                    &corpus,
                    sim.as_ref(),
                    0.8,
                    k,
                    &query,
                    &res,
                    &format!("cosine seed={seed} k={k} q={probe}"),
                );
            }
        }
    }
}

#[test]
fn koios_matches_oracle_across_alphas() {
    let corpus = Corpus::generate(spec(99));
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(corpus.embeddings.clone())));
    for alpha in [0.5, 0.7, 0.9, 1.0] {
        let engine = Koios::new(&corpus.repository, sim.clone(), KoiosConfig::new(5, alpha));
        let query = corpus.repository.set(SetId(3)).to_vec();
        let res = engine.search(&query);
        check_result(
            &corpus,
            sim.as_ref(),
            alpha,
            5,
            &query,
            &res,
            &format!("alpha={alpha}"),
        );
    }
}

#[test]
fn koios_matches_oracle_qgram_similarity() {
    // Plug a purely syntactic, non-metric similarity into the same engine
    // (the generality claim of §IV).
    let corpus = Corpus::generate(spec(7));
    let sim: Arc<dyn ElementSimilarity> = Arc::new(QGramJaccard::new(&corpus.repository, 3));
    let engine = Koios::new(&corpus.repository, sim.clone(), KoiosConfig::new(4, 0.6));
    for probe in [1u32, 20] {
        let query = corpus.repository.set(SetId(probe)).to_vec();
        let res = engine.search(&query);
        check_result(
            &corpus,
            sim.as_ref(),
            0.6,
            4,
            &query,
            &res,
            &format!("qgram q={probe}"),
        );
    }
}

#[test]
fn exact_scores_when_no_em_disabled() {
    let corpus = Corpus::generate(spec(13));
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(corpus.embeddings.clone())));
    let mut cfg = KoiosConfig::new(8, 0.8);
    cfg.no_em_filter = false;
    let engine = Koios::new(&corpus.repository, sim.clone(), cfg);
    let query = corpus.repository.set(SetId(11)).to_vec();
    let res = engine.search(&query);
    let oracle = oracle_scores(&corpus, sim.as_ref(), 0.8, &query);
    assert!(res.hits.iter().all(|h| h.score.exact().is_some()));
    // Exact mode: the score sequence must equal the oracle's top-k exactly.
    for (hit, &(os, _)) in res.hits.iter().zip(oracle.iter()) {
        assert!((hit.score.exact().unwrap() - os).abs() < EPS);
    }
    check_result(&corpus, sim.as_ref(), 0.8, 8, &query, &res, "no-em-off");
}

#[test]
fn queries_not_drawn_from_the_corpus() {
    // Mixed-topic probe queries assembled from arbitrary vocabulary tokens.
    let corpus = Corpus::generate(spec(21));
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(corpus.embeddings.clone())));
    let engine = Koios::new(&corpus.repository, sim.clone(), KoiosConfig::new(3, 0.8));
    let query: Vec<koios_common::TokenId> =
        (0..40).map(|i| koios_common::TokenId(i * 13)).collect();
    let res = engine.search(&query);
    check_result(&corpus, sim.as_ref(), 0.8, 3, &query, &res, "probe-query");
}
