//! Cross-baseline semantics: vanilla overlap as a lower bound (Lemma 1),
//! equality-similarity degeneration, SilkMoth agreement, and the greedy
//! mis-ranking of Example 2 reproduced end-to-end.

use koios::prelude::*;
use koios_baselines::silkmoth::{SilkMoth, SilkMothVariant};
use koios_baselines::{greedy_topk, vanilla_topk};
use koios_core::overlap::semantic_overlap;
use koios_datagen::corpus::{Corpus, CorpusSpec};
use koios_index::inverted::InvertedIndex;
use std::sync::Arc;

const EPS: f64 = 1e-9;

#[test]
fn vanilla_overlap_lower_bounds_semantic_overlap() {
    // Lemma 1 over a whole corpus.
    let c = Corpus::generate(CorpusSpec::small(1000));
    let sim = CosineSimilarity::new(Arc::new(c.embeddings.clone()));
    let query = c.repository.set(SetId(0)).to_vec();
    for (id, _) in c.repository.iter_sets().take(60) {
        let so = semantic_overlap(&c.repository, &sim, 0.8, &query, id);
        let vo = c.repository.vanilla_overlap(&query, id) as f64;
        assert!(so >= vo - EPS, "set {id:?}: SO {so} < vanilla {vo}");
    }
}

#[test]
fn equality_similarity_degenerates_to_vanilla_topk() {
    let c = Corpus::generate(CorpusSpec::small(1001));
    let idx = InvertedIndex::build(&c.repository);
    let query = c.repository.set(SetId(7)).to_vec();
    let k = 8;
    let vanilla = vanilla_topk(&c.repository, &idx, &query, k);
    let mut cfg = KoiosConfig::new(k, 1.0);
    cfg.no_em_filter = false;
    let koios = Koios::new(&c.repository, Arc::new(EqualitySimilarity), cfg).search(&query);
    assert_eq!(vanilla.len(), koios.hits.len());
    for ((_, count), hit) in vanilla.iter().zip(&koios.hits) {
        assert!(
            (hit.score.exact().unwrap() - *count as f64).abs() < EPS,
            "vanilla count {count} vs koios {:?}",
            hit.score
        );
    }
}

#[test]
fn silkmoth_topk_agrees_with_koios_on_qgram_similarity() {
    let c = Corpus::generate(CorpusSpec::small(1002));
    let sim: Arc<dyn ElementSimilarity> = Arc::new(QGramJaccard::new(&c.repository, 3));
    let alpha = 0.6;
    let k = 5;
    let query = c.repository.set(SetId(12)).to_vec();
    let mut cfg = KoiosConfig::new(k, alpha);
    cfg.no_em_filter = false;
    let koios = Koios::new(&c.repository, sim.clone(), cfg).search(&query);
    let theta_k = koios
        .hits
        .last()
        .map(|h| h.score.exact().unwrap())
        .unwrap_or(0.0);
    for variant in [SilkMothVariant::Syntactic, SilkMothVariant::Semantic] {
        let sm = SilkMoth::new(&c.repository, variant, 3, alpha);
        let (res, stats) = sm.search_topk(&query, k, theta_k);
        assert_eq!(res.len(), koios.hits.len(), "{variant:?}");
        for ((_, so), hit) in res.iter().zip(&koios.hits) {
            assert!(
                (so - hit.score.exact().unwrap()).abs() < EPS,
                "{variant:?}: {so} vs {:?}",
                hit.score
            );
        }
        assert!(stats.verified >= res.len());
    }
}

#[test]
fn greedy_misranks_the_paper_example() {
    // Example 2: greedy scores C2 as 3.74 < C1's 4.09 although the true
    // semantic overlap ranks C2 (4.49) above C1 (4.09). We rebuild the
    // figure's similarity structure with hand-crafted synonym clusters.
    let mut b = RepositoryBuilder::new();
    b.add_set(
        "c1",
        [
            "LA",
            "Blain",
            "Appleton",
            "MtPleasant",
            "Lexington",
            "WestCoast",
        ],
    );
    b.add_set(
        "c2",
        [
            "LA",
            "Sacramento",
            "Southern",
            "Blain",
            "SC",
            "Minnesota",
            "NewYorkCity",
        ],
    );
    let mut repo = b.build();
    let query = repo.intern_query_mut([
        "LA",
        "Seattle",
        "Columbia",
        "Blaine",
        "BigApple",
        "Charleston",
    ]);
    let emb = SyntheticEmbeddings::builder()
        .dimensions(48)
        .seed(3)
        .synonym_noise(0.15)
        .synonyms(
            &mut repo,
            &[
                &["Blaine", "Blain"],
                &["BigApple", "NewYorkCity"],
                &["Charleston", "SC", "Columbia"],
                &["Seattle", "WestCoast", "Sacramento"],
                &["MtPleasant", "Lexington"],
            ],
        )
        .build(&repo);
    let sim: Arc<dyn ElementSimilarity> = Arc::new(CosineSimilarity::new(Arc::new(emb)));
    let alpha = 0.7;

    let so1 = semantic_overlap(&repo, sim.as_ref(), alpha, &query, SetId(0));
    let so2 = semantic_overlap(&repo, sim.as_ref(), alpha, &query, SetId(1));
    assert!(
        so2 > so1,
        "semantic overlap must rank c2 ({so2}) above c1 ({so1})"
    );

    // Koios agrees with the exact ranking.
    let engine = Koios::new(&repo, sim.clone(), KoiosConfig::new(1, alpha));
    let res = engine.search(&query);
    assert_eq!(res.hits[0].set, SetId(1), "top-1 must be c2");

    // The greedy comparator may or may not mis-rank depending on the exact
    // synthetic similarities, but it must never exceed the true overlap.
    let idx = InvertedIndex::build(&repo);
    let greedy = greedy_topk(&repo, &idx, sim.as_ref(), &query, 2, alpha);
    for &(set, g) in &greedy {
        let so = semantic_overlap(&repo, sim.as_ref(), alpha, &query, set);
        assert!(g <= so + EPS);
    }
}

#[test]
fn semantic_search_recovers_sets_vanilla_misses() {
    // The Fig. 8 phenomenon: under semantic overlap, sets with few exact
    // matches but many synonyms outrank sets with slightly more exact
    // matches and no semantic relation.
    let mut b = RepositoryBuilder::new();
    // Two exact matches, nothing else related.
    b.add_set(
        "exactish",
        ["alpha0", "alpha1", "unrel0", "unrel1", "unrel2"],
    );
    // One exact match plus four synonyms of query elements.
    b.add_set("semantic", ["alpha0", "syn1", "syn2", "syn3", "syn4"]);
    let mut repo = b.build();
    let query = repo.intern_query_mut(["alpha0", "alpha1", "q1", "q2", "q3", "q4"]);
    let emb = SyntheticEmbeddings::builder()
        .dimensions(32)
        .seed(9)
        .synonym_noise(0.1)
        .synonyms(
            &mut repo,
            &[
                &["q1", "syn1"],
                &["q2", "syn2"],
                &["q3", "syn3"],
                &["q4", "syn4"],
            ],
        )
        .build(&repo);
    let sim: Arc<dyn ElementSimilarity> = Arc::new(CosineSimilarity::new(Arc::new(emb)));
    let idx = InvertedIndex::build(&repo);
    // Vanilla ranks "exactish" first.
    let v = vanilla_topk(&repo, &idx, &query, 1);
    assert_eq!(v[0].0, SetId(0));
    // Semantic overlap ranks "semantic" first.
    let res = Koios::new(&repo, sim, KoiosConfig::new(1, 0.7)).search(&query);
    assert_eq!(res.hits[0].set, SetId(1));
}
