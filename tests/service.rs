//! End-to-end tests for the `koios-service` serving layer: concurrent
//! batches must be indistinguishable from sequential engine calls, the
//! result cache must be observable and invalidatable, and deadlines must
//! degrade gracefully.

use koios::datagen::corpus::{Corpus, CorpusSpec};
use koios::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn corpus_service(workers: usize, cache: usize) -> (Arc<Repository>, SearchService) {
    let corpus = Corpus::generate(CorpusSpec::small(7));
    let repo = Arc::new(corpus.repository);
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(corpus.embeddings)));
    let service = SearchService::new(
        Arc::clone(&repo),
        sim,
        KoiosConfig::new(5, 0.8),
        ServiceConfig::new()
            .with_workers(workers)
            .with_cache_capacity(cache),
    );
    (repo, service)
}

/// 64 queries over 4 workers must return exactly what direct sequential
/// `Koios::search` calls return, in submission order. The cache is
/// disabled so every request exercises the concurrent search path.
#[test]
fn concurrent_batch_matches_sequential_search() {
    let (repo, service) = corpus_service(4, 0);
    let queries: Vec<Vec<TokenId>> = (0..64)
        .map(|i| repo.set(SetId((i % 16) as u32)).to_vec())
        .collect();

    let expected: Vec<SearchResult> = queries
        .iter()
        .map(|q| service.backend().search(q))
        .collect();

    let requests: Vec<SearchRequest> = queries.iter().cloned().map(SearchRequest::new).collect();
    let responses = service.search_batch(&requests);

    assert_eq!(responses.len(), 64);
    for (i, (resp, want)) in responses.iter().zip(&expected).enumerate() {
        assert!(!resp.rejected, "request {i} rejected");
        assert_eq!(
            resp.result.hits, want.hits,
            "request {i}: concurrent result diverged from sequential"
        );
    }
    let stats = service.stats();
    assert_eq!(stats.queries, 64);
    assert_eq!(stats.searched, 64);
    assert_eq!(stats.cache_hits, 0);
}

/// Concurrency plus caching: resubmitting the same batch serves every
/// request from the cache with identical hits.
#[test]
fn repeated_batch_is_served_from_cache() {
    let (repo, service) = corpus_service(4, 128);
    let requests: Vec<SearchRequest> = (0..32)
        .map(|i| SearchRequest::new(repo.set(SetId((i % 16) as u32)).to_vec()))
        .collect();

    let first = service.search_batch(&requests);
    let second = service.search_batch(&requests);
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(b.cache, CacheOutcome::Hit);
        assert_eq!(a.result.hits, b.result.hits);
    }
    let stats = service.stats();
    // 16 distinct queries were searched at most twice (two workers may race
    // on the same fresh key within the first batch) and at least 32 of the
    // 64 submissions hit the cache.
    assert!(stats.cache_hits >= 32, "hits = {}", stats.cache_hits);
    assert!(stats.searched <= 32, "searched = {}", stats.searched);
    assert!(stats.cache_hit_rate() > 0.0);
}

/// The cache is parameter-aware and invalidatable.
#[test]
fn cache_hit_then_invalidation_forces_miss() {
    let (repo, service) = corpus_service(1, 16);
    let q = repo.set(SetId(3)).to_vec();

    let miss = service.search(SearchRequest::new(q.clone()));
    assert_eq!(miss.cache, CacheOutcome::Miss);
    let hit = service.search(SearchRequest::new(q.clone()));
    assert_eq!(hit.cache, CacheOutcome::Hit);
    assert_eq!(miss.result.hits, hit.result.hits);

    // A different k is a different answer — must not alias.
    let other = service.search(SearchRequest::new(q.clone()).with_k(1));
    assert_eq!(other.cache, CacheOutcome::Miss);
    assert_eq!(other.result.hits.len(), 1);

    service.invalidate_cache();
    let after = service.search(SearchRequest::new(q));
    assert_eq!(after.cache, CacheOutcome::Miss);
    assert_eq!(after.result.hits, hit.result.hits);

    let stats = service.stats();
    assert_eq!(stats.cache_hits, 1);
    assert!(stats.cache.invalidations >= 2);
}

/// Deadlines degrade gracefully: an already-expired budget is rejected
/// without running (and without panicking), and a tiny budget on a real
/// search surfaces `timed_out` partial results that are not cached.
#[test]
fn expired_and_tiny_deadlines_set_timed_out_without_panicking() {
    let (repo, service) = corpus_service(2, 16);
    let q = repo.set(SetId(1)).to_vec();

    // Expired before pickup: admission control rejects.
    let rejected = service.search(SearchRequest::new(q.clone()).with_time_budget(Duration::ZERO));
    assert!(rejected.rejected);
    assert!(rejected.result.stats.timed_out);
    assert!(rejected.result.hits.is_empty());

    // A 1ns budget admits (nanoseconds may remain) or rejects, but either
    // way the engine must flag the deadline, return, and cache nothing.
    let tiny =
        service.search(SearchRequest::new(q.clone()).with_time_budget(Duration::from_nanos(1)));
    assert!(tiny.result.stats.timed_out || tiny.rejected);
    assert_eq!(service.cache_len(), 0);

    // The service stays healthy afterwards.
    let ok = service.search(SearchRequest::new(q));
    assert!(!ok.rejected);
    assert!(!ok.result.hits.is_empty());
    assert!(service.stats().rejected >= 1);
}

/// A service routed to a partitioned backend is indistinguishable from the
/// single-engine service: identical hit scores across partition counts,
/// including under per-request `k`/`α` overrides (§VI: sharded search under
/// one shared `θlb` is exact).
#[test]
fn partitioned_service_matches_single_engine_service() {
    let corpus = Corpus::generate(CorpusSpec::small(7));
    let repo = Arc::new(corpus.repository);
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(corpus.embeddings)));
    // no_em_filter off: every hit carries an exact score, so single and
    // partitioned answers are comparable hit-for-hit.
    let mut engine_cfg = KoiosConfig::new(5, 0.8);
    engine_cfg.no_em_filter = false;
    let single = SearchService::new(
        Arc::clone(&repo),
        Arc::clone(&sim),
        engine_cfg.clone(),
        ServiceConfig::new().with_workers(2).with_cache_capacity(0),
    );

    let queries: Vec<Vec<TokenId>> = (0..8).map(|i| repo.set(SetId(i as u32)).to_vec()).collect();
    let overrides: [(Option<usize>, Option<f64>); 3] =
        [(None, None), (Some(2), None), (Some(3), Some(0.7))];

    for parts in [1usize, 2, 8] {
        let parted = SearchService::new_partitioned(
            Arc::clone(&repo),
            Arc::clone(&sim),
            engine_cfg.clone(),
            parts,
            0xBEEF,
            ServiceConfig::new().with_workers(2).with_cache_capacity(0),
        );
        assert_eq!(parted.partitions(), parts);
        for q in &queries {
            for (k, alpha) in overrides {
                let mut req = SearchRequest::new(q.clone());
                if let Some(k) = k {
                    req = req.with_k(k);
                }
                if let Some(a) = alpha {
                    req = req.with_alpha(a);
                }
                let want = single.search(req.clone());
                let got = parted.search(req);
                assert!(!got.rejected && !want.rejected);
                let want_scores: Vec<f64> = want.result.hits.iter().map(|h| h.score.ub()).collect();
                let got_scores: Vec<f64> = got.result.hits.iter().map(|h| h.score.ub()).collect();
                assert_eq!(
                    got_scores.len(),
                    want_scores.len(),
                    "parts={parts} k={k:?} α={alpha:?}"
                );
                for (a, b) in got_scores.iter().zip(&want_scores) {
                    assert!(
                        (a - b).abs() < 1e-9,
                        "parts={parts} k={k:?} α={alpha:?}: {got_scores:?} vs {want_scores:?}"
                    );
                }
            }
        }
    }
}

/// One token cache serves every shard of a partitioned service: overlapping
/// queries hit lists another shard (or query) filled, and the result cache
/// stays backend-transparent.
#[test]
fn partitioned_service_shares_token_cache_across_shards() {
    let corpus = Corpus::generate(CorpusSpec::small(11));
    let repo = Arc::new(corpus.repository);
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(corpus.embeddings)));
    let svc = SearchService::new_partitioned(
        Arc::clone(&repo),
        sim,
        KoiosConfig::new(5, 0.8),
        4,
        3,
        ServiceConfig::new().with_workers(1).with_cache_capacity(16),
    );
    assert!(svc.token_cache().is_some());

    let q = repo.set(SetId(0)).to_vec();
    let cold = svc.search(SearchRequest::new(q.clone()));
    assert_eq!(cold.cache, CacheOutcome::Miss);
    let knn = &cold.result.stats.knn_cache;
    // Every (element, shard) probe resolved against the one shared cache.
    // Shards race within a search, so an element can miss in several shards
    // before the first list is recorded — but never fewer than once.
    assert_eq!(knn.hits + knn.misses, 4 * q.len());
    assert!(knn.misses >= q.len(), "first resolver per element misses");

    // An overlapping (not identical) query reuses the shared lists.
    let mut overlapping = q.clone();
    overlapping.pop();
    let warm = svc.search(SearchRequest::new(overlapping));
    assert_eq!(warm.cache, CacheOutcome::Miss);
    assert!(
        warm.result.stats.knn_cache.hits >= 4 * (q.len() - 1),
        "shared elements hit in every shard: {:?}",
        warm.result.stats.knn_cache
    );

    // Identical resubmission: served by the result cache, backend never runs.
    let hit = svc.search(SearchRequest::new(q));
    assert_eq!(hit.cache, CacheOutcome::Hit);
    assert_eq!(hit.result.hits, cold.result.hits);
}

/// Deadline accounting is consistent between responses and service stats on
/// both backends, and an expired partitioned request does no merge work.
#[test]
fn partitioned_service_timeout_accounting_is_consistent() {
    let corpus = Corpus::generate(CorpusSpec::small(13));
    let repo = Arc::new(corpus.repository);
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(corpus.embeddings)));
    let svc = SearchService::new_partitioned(
        Arc::clone(&repo),
        sim,
        KoiosConfig::new(5, 0.8),
        4,
        3,
        ServiceConfig::new().with_workers(2).with_cache_capacity(16),
    );
    let q = repo.set(SetId(2)).to_vec();

    // Admission expiry: rejected, flagged, and *counted* as timed out.
    let dead = svc.search(
        SearchRequest::new(q.clone())
            .bypassing_cache()
            .with_time_budget(Duration::ZERO),
    );
    assert!(dead.rejected);
    assert!(dead.result.stats.timed_out);
    assert_eq!(dead.result.stats.em_full, 0, "no work for a dead request");
    let st = svc.stats();
    assert_eq!(st.rejected, 1);
    assert_eq!(
        st.timed_out, 1,
        "admission expiry must be visible in timed_out"
    );
    assert_eq!(st.searched, 0);

    // A healthy follow-up still works and leaves the counters alone.
    let ok = svc.search(SearchRequest::new(q));
    assert!(!ok.rejected && !ok.result.stats.timed_out);
    let st = svc.stats();
    assert_eq!((st.rejected, st.timed_out, st.searched), (1, 1, 1));
}

/// Many threads race submit/await on *one* persistent pool; every handle
/// must resolve to exactly the sequential in-process answer for its query,
/// and the pool must survive to serve afterwards.
#[test]
fn concurrent_submitters_racing_one_pool_match_sequential() {
    let (repo, service) = corpus_service(3, 0);
    let service = Arc::new(service);
    let queries: Vec<Vec<TokenId>> = (0..8).map(|i| repo.set(SetId(i as u32)).to_vec()).collect();
    let expected: Vec<Vec<Hit>> = queries
        .iter()
        .map(|q| service.backend().search(q).hits)
        .collect();

    std::thread::scope(|sc| {
        for t in 0..6 {
            let service = Arc::clone(&service);
            let queries = &queries;
            let expected = &expected;
            sc.spawn(move || {
                // Submit a whole wave, then await it — interleaving with
                // five other submitters on the same queue.
                let handles: Vec<ResponseHandle> = queries
                    .iter()
                    .map(|q| service.submit(SearchRequest::new(q.clone())))
                    .collect();
                for (i, h) in handles.into_iter().enumerate() {
                    let resp = h.wait();
                    assert!(!resp.rejected, "thread {t} query {i}");
                    assert_eq!(
                        resp.result.hits, expected[i],
                        "thread {t} query {i} diverged under contention"
                    );
                }
            });
        }
    });

    let stats = service.stats();
    assert_eq!(stats.queries, 6 * 8);
    assert_eq!(stats.searched, 6 * 8, "cache disabled: every submit ran");
    // The pool is still alive for ordinary traffic.
    let after = service.search(SearchRequest::new(queries[0].clone()));
    assert_eq!(after.result.hits, expected[0]);
}

/// Graceful shutdown: handles submitted before `shutdown` all resolve
/// (the queue drains), and the service still answers inline afterwards.
#[test]
fn shutdown_drains_in_flight_tickets() {
    let (repo, mut service) = corpus_service(1, 0);
    let queries: Vec<Vec<TokenId>> = (0..6).map(|i| repo.set(SetId(i as u32)).to_vec()).collect();
    let expected: Vec<Vec<Hit>> = queries
        .iter()
        .map(|q| service.backend().search(q).hits)
        .collect();

    // Six searches pile up behind a single worker…
    let handles: Vec<ResponseHandle> = queries
        .iter()
        .map(|q| service.submit(SearchRequest::new(q.clone())))
        .collect();
    // …and shutdown must not drop any of them.
    service.shutdown();
    for (i, h) in handles.into_iter().enumerate() {
        let resp = h.wait();
        assert!(!resp.rejected, "queued request {i} was dropped by shutdown");
        assert_eq!(resp.result.hits, expected[i], "request {i}");
    }

    // Post-shutdown submissions run inline on the caller thread.
    let inline = service.submit(SearchRequest::new(queries[0].clone()));
    assert!(inline.is_ready(), "inline fallback resolves immediately");
    assert_eq!(inline.wait().result.hits, expected[0]);
    let batch = service.search_batch(&[SearchRequest::new(queries[1].clone())]);
    assert_eq!(batch[0].result.hits, expected[1]);
}

/// `ServiceConfig::result_ttl` bounds staleness: within the TTL a repeat
/// hits, past it the entry expires (counted, evicted) and the service
/// searches again.
#[test]
fn result_ttl_expires_cached_entries() {
    let corpus = Corpus::generate(CorpusSpec::small(7));
    let repo = Arc::new(corpus.repository);
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(corpus.embeddings)));
    let service = SearchService::new(
        Arc::clone(&repo),
        sim,
        KoiosConfig::new(5, 0.8),
        ServiceConfig::new()
            .with_workers(1)
            .with_cache_capacity(16)
            .with_result_ttl(Duration::from_millis(80)),
    );
    let q = repo.set(SetId(4)).to_vec();

    let miss = service.search(SearchRequest::new(q.clone()));
    assert_eq!(miss.cache, CacheOutcome::Miss);
    let hit = service.search(SearchRequest::new(q.clone()));
    assert_eq!(hit.cache, CacheOutcome::Hit, "fresh entry within TTL");

    std::thread::sleep(Duration::from_millis(120));
    let expired = service.search(SearchRequest::new(q.clone()));
    assert_eq!(expired.cache, CacheOutcome::Miss, "entry aged out");
    assert_eq!(
        expired.result.hits, miss.result.hits,
        "same answer, recomputed"
    );
    let stats = service.stats();
    assert_eq!(stats.cache.expirations, 1);
    assert_eq!(stats.searched, 2);

    // The refill is cached again.
    let rehit = service.search(SearchRequest::new(q));
    assert_eq!(rehit.cache, CacheOutcome::Hit);
}

/// Mixed batches keep submission order even when some requests reject.
#[test]
fn mixed_batch_keeps_order_and_isolation() {
    let (repo, service) = corpus_service(4, 16);
    let good = repo.set(SetId(2)).to_vec();
    let requests = vec![
        SearchRequest::new(good.clone()),
        // bypass_cache: otherwise a worker that cached request 0 first
        // could serve this from the probe (which runs before admission).
        SearchRequest::new(good.clone())
            .with_time_budget(Duration::ZERO)
            .bypassing_cache(),
        SearchRequest::new(good.clone()).with_k(0), // invalid override
        SearchRequest::new(good.clone()),
    ];
    let responses = service.search_batch(&requests);
    assert_eq!(responses.len(), 4);
    assert!(!responses[0].rejected);
    assert!(responses[1].rejected);
    assert!(responses[2].rejected);
    assert!(!responses[3].rejected);
    assert_eq!(responses[0].result.hits, responses[3].result.hits);
}
