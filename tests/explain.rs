//! EXPLAIN-mode acceptance tests: funnel counts must reconcile *exactly*
//! with the `SearchStats` counters on both engine backends, and turning
//! the funnel on must never change a single hit — explain is pure
//! observation, not a search mode.

use koios::prelude::*;
use koios_datagen::corpus::{Corpus, CorpusSpec};
use std::sync::Arc;

fn corpus(seed: u64) -> Corpus {
    let mut s = CorpusSpec::small(seed);
    s.num_sets = 150;
    s.vocab_size = 600;
    s.clusters = 70;
    Corpus::generate(s)
}

/// Every funnel counter that mirrors a `SearchStats` field must agree
/// with it exactly; the funnel is the same accounting viewed stage-wise.
fn assert_reconciled(result: &SearchResult, label: &str) {
    let stats = &result.stats;
    let f = stats
        .funnel
        .as_deref()
        .unwrap_or_else(|| panic!("{label}: explain mode must attach a funnel"));
    assert_eq!(
        f.stream_tuples, stats.stream_tuples,
        "{label}: stream_tuples"
    );
    assert_eq!(
        f.candidates_discovered, stats.candidates,
        "{label}: candidates"
    );
    assert_eq!(
        f.ub_filter_pruned, stats.ub_filter_pruned,
        "{label}: ub_filter_pruned"
    );
    assert_eq!(f.iub_pruned, stats.iub_pruned, "{label}: iub_pruned");
    assert_eq!(
        f.entered_postprocess, stats.to_postprocess,
        "{label}: entered_postprocess"
    );
    assert_eq!(
        f.postprocess_ub_pruned, stats.postprocess_ub_pruned,
        "{label}: postprocess_ub_pruned"
    );
    assert_eq!(f.no_em_certified, stats.no_em, "{label}: no_em_certified");
    assert_eq!(
        f.em_early_terminated, stats.em_early_terminated,
        "{label}: em_early_terminated"
    );
    assert_eq!(f.em_verified, stats.em_full, "{label}: em_verified");
    assert_eq!(f.bucket_moves, stats.bucket_moves, "{label}: bucket_moves");
    assert_eq!(
        f.knn_cache_hits, stats.knn_cache.hits,
        "{label}: knn_cache_hits"
    );
    assert_eq!(
        f.knn_cache_misses, stats.knn_cache.misses,
        "{label}: knn_cache_misses"
    );
    assert_eq!(f.returned, result.hits.len(), "{label}: returned");

    // Conservation: every discovered candidate is pruned at refinement,
    // pruned at postprocess admission, or enters postprocess.
    assert_eq!(
        f.candidates_discovered,
        f.ub_filter_pruned + f.iub_pruned + f.entered_postprocess,
        "{label}: refinement stage must conserve candidates"
    );
    // Posting-length evidence covers every probed token's list.
    assert_eq!(
        f.posting_lengths.len(),
        f.postings_probed,
        "{label}: one posting length per probed token"
    );
    assert_eq!(
        f.posting_lengths.iter().sum::<usize>(),
        f.posting_entries_scanned,
        "{label}: posting lengths account for every scanned entry"
    );
    assert!(
        f.tombstone_skips <= f.posting_entries_scanned,
        "{label}: tombstone skips are a subset of scanned entries"
    );
}

#[test]
fn funnel_reconciles_with_stats_on_single_engine() {
    let c = corpus(1200);
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(c.embeddings.clone())));
    for (no_em, early) in [(true, true), (true, false), (false, false)] {
        let mut cfg = KoiosConfig::new(5, 0.8).with_explain(true);
        cfg.no_em_filter = no_em;
        cfg.em_early_termination = early;
        let engine = Koios::new(&c.repository, sim.clone(), cfg);
        for q in 0..8u32 {
            let query = c.repository.set(SetId(q * 7)).to_vec();
            let res = engine.search(&query);
            assert_reconciled(&res, &format!("single no_em={no_em} early={early} q={q}"));
        }
    }
}

#[test]
fn funnel_reconciles_with_stats_on_partitioned_engine() {
    let c = corpus(1201);
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(c.embeddings.clone())));
    for parts in [2usize, 5, 9] {
        let cfg = KoiosConfig::new(5, 0.8).with_explain(true);
        let engine = PartitionedKoios::new(&c.repository, sim.clone(), cfg, parts, 0xBEEF);
        for q in 0..6u32 {
            let query = c.repository.set(SetId(q * 11)).to_vec();
            let res = engine.search(&query);
            let label = format!("partitioned parts={parts} q={q}");
            assert_reconciled(&res, &label);

            // The per-shard sub-funnels must sum back to the merged totals
            // for the counters that accumulate shard-locally.
            let f = res.stats.funnel.as_deref().unwrap();
            assert_eq!(f.shards.len(), parts, "{label}: one sub-funnel per shard");
            assert_eq!(
                f.shards.iter().map(|s| s.stream_tuples).sum::<usize>(),
                f.stream_tuples,
                "{label}: shard stream_tuples"
            );
            assert_eq!(
                f.shards.iter().map(|s| s.candidates).sum::<usize>(),
                f.candidates_discovered,
                "{label}: shard candidates"
            );
            assert_eq!(
                f.shards
                    .iter()
                    .map(|s| s.entered_postprocess)
                    .sum::<usize>(),
                f.entered_postprocess,
                "{label}: shard entered_postprocess"
            );
            // Merge-time verification only ever *adds* exact matchings on
            // top of what the shards certified.
            assert!(
                f.shards.iter().map(|s| s.em_verified).sum::<usize>() <= f.em_verified,
                "{label}: shard em_verified"
            );
        }
    }
}

/// Explain is observation only: with identical configs differing in
/// nothing but the `explain` flag, the hit lists are equal hit-for-hit
/// (same sets, bit-identical scores) on both backends.
#[test]
fn explain_mode_never_changes_hits() {
    let c = corpus(1202);
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(c.embeddings.clone())));
    let cfg = KoiosConfig::new(6, 0.8);
    let plain_single = Koios::new(&c.repository, sim.clone(), cfg.clone());
    let explain_single = Koios::new(&c.repository, sim.clone(), cfg.clone().with_explain(true));
    let plain_part = PartitionedKoios::new(&c.repository, sim.clone(), cfg.clone(), 4, 7);
    let explain_part =
        PartitionedKoios::new(&c.repository, sim.clone(), cfg.with_explain(true), 4, 7);
    for q in 0..10u32 {
        let query = c.repository.set(SetId(q * 13)).to_vec();
        let a = plain_single.search(&query);
        let b = explain_single.search(&query);
        assert_eq!(a.hits, b.hits, "single q={q}");
        assert!(a.stats.funnel.is_none(), "explain off attaches no funnel");
        assert!(b.stats.funnel.is_some());

        let a = plain_part.search(&query);
        let b = explain_part.search(&query);
        assert_eq!(a.hits, b.hits, "partitioned q={q}");
        assert!(a.stats.funnel.is_none());
        assert!(b.stats.funnel.is_some());
    }
}

/// The service folds a request-level `explain` into the effective config
/// additively: explain requests get a funnel, plain requests do not, and
/// both see the same hits — under an 8-thread hammer mixing the two.
#[test]
fn explain_requests_under_concurrency() {
    let c = corpus(1203);
    let repo = Arc::new(c.repository);
    let sim: Arc<dyn ElementSimilarity> = Arc::new(CosineSimilarity::new(Arc::new(c.embeddings)));
    let service = Arc::new(SearchService::new_partitioned(
        Arc::clone(&repo),
        sim,
        KoiosConfig::new(5, 0.8),
        4,
        21,
        ServiceConfig::new().with_workers(4).with_cache_capacity(64),
    ));

    let queries: Vec<Vec<TokenId>> = (0..8).map(|i| repo.set(SetId(i * 9)).to_vec()).collect();
    let expected: Vec<Vec<Hit>> = queries
        .iter()
        .map(|q| {
            service
                .search(SearchRequest::new(q.clone()).bypassing_cache())
                .result
                .hits
        })
        .collect();

    std::thread::scope(|sc| {
        for t in 0..8usize {
            let service = &service;
            let queries = &queries;
            let expected = &expected;
            sc.spawn(move || {
                let explain = t % 2 == 0;
                for round in 0..4 {
                    for (q, want) in queries.iter().zip(expected) {
                        let req = SearchRequest::new(q.clone())
                            .with_explain(explain)
                            .bypassing_cache();
                        let resp = service.search(req);
                        assert_eq!(
                            &resp.result.hits, want,
                            "thread {t} round {round}: hits must not depend on explain"
                        );
                        if explain {
                            assert_reconciled(&resp.result, &format!("hammer t={t} r={round}"));
                        } else {
                            assert!(resp.result.stats.funnel.is_none(), "thread {t}");
                        }
                    }
                }
            });
        }
    });

    // Cached answers carry no funnel even for explain requests: the cache
    // stores hits, and explain never forks the cache key.
    let req = SearchRequest::new(queries[0].clone()).with_explain(true);
    let miss = service.search(req.clone());
    assert!(miss.result.stats.funnel.is_some());
    let hit = service.search(req);
    assert_eq!(hit.cache, CacheOutcome::Hit);
    assert!(hit.result.stats.funnel.is_none());
    assert_eq!(hit.result.hits, miss.result.hits);
}
